"""Ground tuples (facts) and the tuple space ``tup(D)``.

A :class:`Fact` is a ground tuple ``R(a, b, c)`` — a relation name plus a
tuple of constants.  ``tup(D)`` (Section 3.1) is the set of all facts
that can be formed over a schema using constants from the domain; it is
the sample space of the paper's probabilistic model, where each fact is
an independent probabilistic event.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..exceptions import SchemaError
from .domain import Domain
from .schema import RelationSchema, Schema

__all__ = ["Fact", "tuple_space", "tuple_space_size", "facts_of_relation"]


@dataclass(frozen=True, order=True)
class Fact:
    """A ground tuple ``relation(values...)``.

    Facts are immutable, hashable and totally ordered (ordering is only
    used to make enumeration deterministic; it has no semantic meaning).
    """

    relation: str
    values: Tuple[object, ...]

    def __init__(self, relation: str, values: Sequence[object]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", tuple(values))

    @property
    def arity(self) -> int:
        """Number of values in the fact."""
        return len(self.values)

    def __getitem__(self, index: int) -> object:
        return self.values[index]

    def project(self, positions: Sequence[int]) -> Tuple[object, ...]:
        """The sub-tuple of values at the given positions."""
        return tuple(self.values[i] for i in positions)

    def replace(self, position: int, value: object) -> "Fact":
        """A copy of this fact with one value replaced."""
        values = list(self.values)
        values[position] = value
        return Fact(self.relation, values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def facts_of_relation(
    relation: RelationSchema, domain: Domain
) -> Iterator[Fact]:
    """Enumerate every fact of one relation over (per-attribute) domains.

    Attributes with a declared :class:`~repro.relational.domain.Domain`
    range over it; the remaining attributes range over ``domain``.
    """
    position_domains = relation.position_domains(domain)
    for combo in itertools.product(*(d.values for d in position_domains)):
        yield Fact(relation.name, combo)


def tuple_space(schema: Schema, domain: Domain | None = None) -> List[Fact]:
    """The full tuple space ``tup(D)`` of a schema as a deterministic list.

    Parameters
    ----------
    schema:
        The database schema.
    domain:
        Optional override of the schema's global domain (useful when
        analysing the same queries over domains of different sizes).
    """
    domain = domain or schema.domain
    facts: List[Fact] = []
    for relation in schema:
        facts.extend(facts_of_relation(relation, domain))
    return facts


def tuple_space_size(schema: Schema, domain: Domain | None = None) -> int:
    """Size of ``tup(D)`` without materialising it."""
    domain = domain or schema.domain
    total = 0
    for relation in schema:
        count = 1
        for position_domain in relation.position_domains(domain):
            count *= len(position_domain)
        total += count
    return total


def validate_fact(schema: Schema, fact: Fact) -> None:
    """Raise :class:`SchemaError` if ``fact`` does not fit the schema."""
    relation = schema.relation(fact.relation)
    if fact.arity != relation.arity:
        raise SchemaError(
            f"fact {fact!r} has arity {fact.arity}, expected {relation.arity}"
        )
