"""Reproduction of the **Section 5.2 applications** of Theorem 5.2.

Application 1 (no knowledge) reduces to Theorem 4.5; Application 2
(keys), Application 3 (cardinality), Application 4 (protecting secrets
by disclosing tuple status) and Application 5 (prior views) each get a
row comparing the paper's verdict with the measured one, and the
syntactic decisions are cross-checked against the literal Definition 5.1
computation where feasible.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, Fact, q
from repro.core import (
    CardinalityConstraintKnowledge,
    KeyConstraintKnowledge,
    TupleStatusKnowledge,
    decide_security,
    decide_with_cardinality_constraint,
    decide_with_key_constraints,
    decide_with_prior_view,
    decide_with_tuple_status,
    verify_with_knowledge,
)
from repro.relational import Domain, RelationSchema, Schema

KV_SCHEMA = Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b", "c"))
AB_SCHEMA = Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b"))

HEADER = ("application", "scenario", "paper", "measured")
TITLE = "Section 5.2 — security under prior knowledge"


def test_application_1_no_knowledge(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    secret = q("S() :- R('a', 'b')")
    view = q("V() :- R('a', 'c')")
    decision = benchmark(decide_security, secret, view, KV_SCHEMA)
    report.add_row("1 (none)", "S():-R(a,b) vs V():-R(a,c)", "secure", "secure" if decision.secure else "NOT secure")
    assert decision.secure


def test_application_2_keys(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    secret = q("S() :- R('a', 'b')")
    view = q("V() :- R('a', 'c')")
    knowledge = KeyConstraintKnowledge({"R": (0,)})
    decision = benchmark(decide_with_key_constraints, secret, view, knowledge, KV_SCHEMA)
    report.add_row(
        "2 (key on attr 1)", "same pair as application 1", "NOT secure",
        "secure" if decision.secure else "NOT secure",
    )
    assert decision.secure is False

    # Numeric confirmation of both directions on a concrete dictionary.
    dictionary = Dictionary.uniform(KV_SCHEMA, Fraction(1, 3))
    assert not verify_with_knowledge(secret, view, knowledge, dictionary)
    assert verify_with_knowledge(secret, q("V2() :- R('b', 'c')"), knowledge, dictionary)


def test_application_3_cardinality(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    secret = q("S() :- R('a', 'b')")
    view = q("V() :- R('b', 'c')")
    knowledge = CardinalityConstraintKnowledge("exactly", 1)
    decision = benchmark(
        decide_with_cardinality_constraint, secret, view, knowledge, KV_SCHEMA
    )
    report.add_row(
        "3 (|I| known)", "disjoint-tuple pair, |I| = 1 known", "NOT secure",
        "secure" if decision.secure else "NOT secure",
    )
    assert decision.secure is False

    dictionary = Dictionary.uniform(AB_SCHEMA, Fraction(1, 2))
    assert not verify_with_knowledge(
        q("S() :- R('a', 'b')"), q("V() :- R('b', 'a')"), knowledge, dictionary
    )


def test_application_4_tuple_status(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    secret = q("S() :- R('a', -)")
    view = q("V() :- R(-, 'b')")
    without = decide_security(secret, view, AB_SCHEMA)
    knowledge = TupleStatusKnowledge(absent=[Fact("R", ("a", "b"))])
    decision = benchmark(decide_with_tuple_status, secret, view, knowledge, AB_SCHEMA)
    report.add_row(
        "4 (disclose status)",
        "S():-R(a,-), V():-R(-,b); announce R(a,b) ∉ I",
        "insecure -> secure",
        f"{'secure' if without.secure else 'insecure'} -> "
        f"{'secure' if decision.secure else 'insecure'}",
    )
    assert not without.secure
    assert decision.secure is True

    dictionary = Dictionary.uniform(AB_SCHEMA, Fraction(1, 3))
    assert verify_with_knowledge(secret, view, knowledge, dictionary)


def test_application_5_prior_views(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    schema = Schema(
        [
            RelationSchema("R1", ("a1", "a2", "a3", "a4")),
            RelationSchema("R2", ("a1", "a2", "a3", "a4")),
        ],
        domain=Domain.of("a", "b", "c", "d", "e", "f"),
    )
    prior = q("U() :- R1('a', 'b', -, -), R2('d', 'e', -, -)")
    secret = q("S() :- R1('a', -, -, -), R2('d', 'e', 'f', -)")
    view = q("V() :- R1('a', 'b', 'c', -), R2('d', -, -, -)")

    alone_prior = decide_security(secret, prior, schema)
    alone_view = decide_security(secret, view, schema)
    # The split search over the 4-ary relations is the most expensive call in
    # the harness (tens of seconds); time a single round.
    relative = benchmark.pedantic(
        decide_with_prior_view, args=(secret, view, prior, schema), rounds=1, iterations=1
    )

    report.add_row(
        "5 (prior view U)",
        "paper's U, S, V over R1, R2",
        "S insecure vs U and vs V, but U : S | V",
        f"vs U: {'secure' if alone_prior.secure else 'insecure'}; "
        f"vs V: {'secure' if alone_view.secure else 'insecure'}; "
        f"U : S | V: {'secure' if relative.secure else 'insecure'}",
    )
    assert not alone_prior.secure
    assert not alone_view.secure
    assert relative.secure is True
