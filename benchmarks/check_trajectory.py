"""Diff committed ``BENCH_*.json`` packs against freshly emitted numbers.

Every benchmark pack commits its machine-readable results at the repo
root and embeds its own acceptance gates as ``required_<name>`` keys:
within the same JSON object, every numeric sibling whose key ends with
``<name>`` (and is not itself a ``required_`` key) must be ≥ the
required value.  This script re-derives those gates from the *fresh*
working-tree files — the ones the benchmark run just wrote — so a
regression in any pack fails CI even if the pack's own pytest gate was
skipped, and prints the fresh-vs-committed deltas so drift is visible
before it crosses a gate.

Usage (after running the benchmark packs)::

    python benchmarks/check_trajectory.py

Exit status 1 when a committed pack has no fresh counterpart or a fresh
number violates its gate.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def committed_packs() -> dict:
    """The ``BENCH_*.json`` files tracked at HEAD, parsed."""
    listed = subprocess.run(
        ["git", "ls-tree", "--name-only", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.split()
    names = [n for n in listed if n.startswith("BENCH_") and n.endswith(".json")]
    packs = {}
    for name in names:
        shown = subprocess.run(
            ["git", "show", f"HEAD:{name}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        packs[name] = json.loads(shown.stdout)
    return packs


def _walk(document, path=()):
    """Yield every JSON object in the document with its path."""
    if isinstance(document, dict):
        yield path, document
        for key, value in document.items():
            yield from _walk(value, path + (key,))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            yield from _walk(value, path + (str(index),))


def gate_violations(document):
    """``(path, key, value, required)`` tuples where a gate fails."""
    violations = []
    for path, obj in _walk(document):
        for key, required in obj.items():
            if not key.startswith("required_"):
                continue
            if not isinstance(required, (int, float)):
                continue
            suffix = key[len("required_"):]
            for sibling, value in obj.items():
                if sibling.startswith("required_") or not sibling.endswith(suffix):
                    continue
                if isinstance(value, (int, float)) and value < required:
                    violations.append((path, sibling, value, required))
    return violations


def numeric_leaves(document, path=()):
    """Flatten to ``{dotted.path: number}`` for the delta report."""
    leaves = {}
    if isinstance(document, dict):
        for key, value in document.items():
            leaves.update(numeric_leaves(value, path + (key,)))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            leaves.update(numeric_leaves(value, path + (str(index),)))
    elif isinstance(document, (int, float)) and not isinstance(document, bool):
        leaves[".".join(path)] = document
    return leaves


def main() -> int:
    packs = committed_packs()
    if not packs:
        print("no committed BENCH_*.json packs to check")
        return 0

    failed = False
    for name, committed in sorted(packs.items()):
        fresh_path = REPO_ROOT / name
        if not fresh_path.exists():
            print(f"FAIL {name}: committed but not emitted by this benchmark run")
            failed = True
            continue
        fresh = json.loads(fresh_path.read_text())

        before, after = numeric_leaves(committed), numeric_leaves(fresh)
        moved = [
            (key, before[key], after[key])
            for key in sorted(before.keys() & after.keys())
            if before[key] != after[key]
        ]
        print(f"{name}: {len(moved)} of {len(after)} numbers moved")
        for key, old, new in moved:
            print(f"  {key}: {old} -> {new}")

        violations = gate_violations(fresh)
        for path, key, value, required in violations:
            where = ".".join(path) or "<root>"
            print(f"FAIL {name}: {where}.{key} = {value} < required {required}")
            failed = True
        if not violations:
            print(f"  gates: all required_* thresholds hold")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
