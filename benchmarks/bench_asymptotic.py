"""Reproduction of the **Section 6.2** practical-security classification.

Regenerates the three regimes the paper distinguishes — perfect
query-view security, practical query-view security and practical
disclosure — for representative boolean pairs over a binary relation
with constant expected size, and validates the analytic asymptotic
orders ``μ_n[Q] ≈ c·n^{-d}`` against Monte-Carlo simulation.
"""

from __future__ import annotations

import pytest

from repro import q
from repro.bench import binary_schema
from repro.core import (
    PracticalSecurityLevel,
    asymptotic_order,
    classify_practical_security,
    empirical_mu,
)

SCHEMA = binary_schema(("a", "b"))
EXPECTED_SIZE = 3.0

TITLE = "Section 6.2 — practical (asymptotic) security"
HEADER = ("secret", "view", "expected regime", "measured regime", "lim μ_n[S|V]")

CASES = [
    (
        q("S() :- R('a', 'a')"),
        q("V() :- R('b', 'b')"),
        PracticalSecurityLevel.PERFECT,
    ),
    (
        q("S() :- R('a', 'b')"),
        q("V() :- R('a', x)"),
        PracticalSecurityLevel.PRACTICAL_SECURITY,
    ),
    (
        q("S() :- R('a', 'b')"),
        q("V() :- R('a', 'b'), R('b', x)"),
        PracticalSecurityLevel.PRACTICAL_DISCLOSURE,
    ),
]


@pytest.mark.parametrize("case", CASES, ids=["perfect", "practical-security", "practical-disclosure"])
def test_practical_security_classification(benchmark, experiment_report, case):
    secret, view, expected = case
    report = experiment_report(TITLE, HEADER)
    result = benchmark(
        classify_practical_security, secret, view, SCHEMA, EXPECTED_SIZE
    )
    report.add_row(repr(secret), repr(view), expected.value, result.level.value, f"{result.limit:.3f}")
    assert result.level is expected


def test_asymptotic_orders_match_simulation(benchmark, experiment_report):
    report = experiment_report(
        "Section 6.2 — analytic μ_n[Q] vs Monte-Carlo simulation",
        ("query", "n", "analytic c·n^-d", "simulated μ_n"),
    )
    query = q("V() :- R('a', x)")
    order = asymptotic_order(query, expected_sizes=EXPECTED_SIZE)

    def simulate():
        return {
            n: empirical_mu(query, domain_size=n, expected_sizes=EXPECTED_SIZE,
                            samples=4000, seed=11)
            for n in (20, 40, 80)
        }

    simulated = benchmark.pedantic(simulate, rounds=1, iterations=1)
    for n, value in simulated.items():
        predicted = order.estimate(n)
        report.add_row(repr(query), n, f"{predicted:.4f}", f"{value:.4f}")
        assert value == pytest.approx(predicted, rel=0.35)

    assert order.exponent == 1
