"""Observability overhead: tracing off must be (almost) free.

The tracing subsystem promises near-zero cost when no trace is active:
every instrumentation point is one module-global boolean check
returning a shared null object.  This benchmark holds the serving tier
to that promise with an A/B ablation on the seeded Table 1 workload:

* **Baseline** — the pre-tracing request path, reconstructed at runtime
  by bypassing the server's trace wrapper and traced-submit branch
  (``_handle_analysis_core`` / the bare ``run_in_executor`` call), i.e.
  exactly the code that ran before the observability layer landed.
* **Tracing off** — the stock server with tracing disabled (the
  default): the wrapper checks ``request.trace`` once and falls
  through.

Each configuration gets its own fresh server (no cache warm-over
between runs) and is replayed ``ROUNDS`` times interleaved; the best
round of each side is compared.  The gate: tracing-off throughput must
stay within ``MAX_OVERHEAD`` (5%) of baseline.  A traced replay (every
request carrying ``trace``) is also measured and recorded — ungated —
so the cost of *enabled* tracing stays visible across PRs.

The run writes ``BENCH_observability.json`` with the gate embedded as
``required_throughput_ratio`` (consumed by ``check_trajectory.py``).
"""

from __future__ import annotations

import json
import time
import types
from pathlib import Path

from repro.obs import span
from repro.service import ServerThread
from repro.workload import WorkloadSpec, generate_workload, replay_workload

#: Tracing off may cost at most this fraction of baseline throughput.
MAX_OVERHEAD = 0.05

#: The acceptance gate on tracing-off / baseline throughput.
MIN_THROUGHPUT_RATIO = 1.0 - MAX_OVERHEAD

#: Replay rounds per configuration (best round is compared).
ROUNDS = 2

#: Mixed-workload size and replay fan-out (mirrors BENCH_service.json).
WORKLOAD_REQUESTS = 200
CONCURRENCY = 12

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_observability.json")


def _bare_submit(self, loop, session, request):
    """The pre-tracing submit path: no branch, no context copy."""
    return loop.run_in_executor(self._executor, self._execute, session, request)


def _strip_instrumentation(server_thread: ServerThread) -> None:
    """Rebuild the pre-tracing request path on a live server.

    Binding ``_handle_analysis`` straight to the core handler and
    ``_submit`` to the bare executor call removes the trace wrapper and
    the traced-submit branch entirely — the remaining code is the
    request path as it existed before the observability layer.
    """
    server = server_thread.server
    server._handle_analysis = server._handle_analysis_core
    server._submit = types.MethodType(_bare_submit, server)


def _replay(requests, *, strip: bool, traced: bool = False) -> dict:
    """One fresh server, one replay; returns the summary document."""
    if traced:
        requests = [dict(request, trace={"return": True}) for request in requests]
    with ServerThread(workers=4) as server:
        if strip:
            _strip_instrumentation(server)
        return replay_workload(requests, *server.address, concurrency=CONCURRENCY)


def _disarmed_span_cost_ns(iterations: int = 200_000) -> float:
    """Nanoseconds per ``span()`` call with tracing off (the guard cost)."""
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench.noop"):
            pass
    return (time.perf_counter() - started) / iterations * 1e9


def test_tracing_off_overhead(experiment_report):
    report = experiment_report(
        "Observability — tracing-off overhead on the Table 1 workload",
        ("configuration", "best rps", "p50 (ms)", "ok", "ratio", "required"),
    )
    spec = WorkloadSpec(
        seed=42, requests=WORKLOAD_REQUESTS, duplicate_fraction=0.3, random_fraction=0.0
    )
    requests = generate_workload(spec)

    baseline_runs, off_runs = [], []
    for _ in range(ROUNDS):
        baseline_runs.append(_replay(requests, strip=True))
        off_runs.append(_replay(requests, strip=False))
    for summary in (*baseline_runs, *off_runs):
        assert summary["errors"] == 0, summary.get("failures")
        assert summary["ok"] == WORKLOAD_REQUESTS

    baseline = max(baseline_runs, key=lambda s: s["requests_per_second"])
    off = max(off_runs, key=lambda s: s["requests_per_second"])
    ratio = off["requests_per_second"] / baseline["requests_per_second"]

    traced = _replay(requests, strip=False, traced=True)
    assert traced["errors"] == 0, traced.get("failures")
    traced_ratio = traced["requests_per_second"] / baseline["requests_per_second"]
    guard_ns = _disarmed_span_cost_ns()

    report.add_row(
        "baseline (pre-tracing path)",
        f"{baseline['requests_per_second']:.0f}",
        f"{baseline['latency_ms']['p50']:.2f}",
        baseline["ok"],
        "1.00",
        "",
    )
    report.add_row(
        "tracing off (stock)",
        f"{off['requests_per_second']:.0f}",
        f"{off['latency_ms']['p50']:.2f}",
        off["ok"],
        f"{ratio:.3f}",
        f"≥ {MIN_THROUGHPUT_RATIO:.2f}",
    )
    report.add_row(
        "traced (every request)",
        f"{traced['requests_per_second']:.0f}",
        f"{traced['latency_ms']['p50']:.2f}",
        traced["ok"],
        f"{traced_ratio:.3f}",
        "(informational)",
    )

    JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "observability_overhead",
                "workload": {
                    "seed": spec.seed,
                    "requests": spec.requests,
                    "duplicate_fraction": spec.duplicate_fraction,
                    "source": "table1-3-variable",
                },
                "concurrency": CONCURRENCY,
                "rounds": ROUNDS,
                "baseline_requests_per_second": baseline["requests_per_second"],
                "tracing_off_requests_per_second": off["requests_per_second"],
                "throughput_ratio": round(ratio, 4),
                "required_throughput_ratio": MIN_THROUGHPUT_RATIO,
                "traced_requests_per_second": traced["requests_per_second"],
                # Named so it escapes the ``required_throughput_ratio``
                # suffix gate: enabled tracing is recorded, not gated.
                "traced_vs_baseline": round(traced_ratio, 4),
                "latency_ms": {
                    "baseline_p50": baseline["latency_ms"]["p50"],
                    "tracing_off_p50": off["latency_ms"]["p50"],
                    "traced_p50": traced["latency_ms"]["p50"],
                },
                "disarmed_span_guard_ns": round(guard_ns, 1),
            },
            indent=2,
        )
        + "\n"
    )

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"tracing-off throughput is {(1 - ratio) * 100:.1f}% below the "
        f"pre-tracing baseline (allowed ≤ {MAX_OVERHEAD * 100:.0f}%)"
    )
