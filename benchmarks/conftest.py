"""Shared infrastructure for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or worked
examples.  Besides timing the underlying computation with
``pytest-benchmark``, every benchmark records the rows it reproduced in
a session-wide report which is printed at the end of the run, so that
``pytest benchmarks/ --benchmark-only`` emits the regenerated tables
alongside the timing statistics (this is the output captured in
``bench_output.txt`` and summarised in EXPERIMENTS.md).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.audit import render_table

#: Experiment id -> (header, rows, notes)
_REPORT: "OrderedDict[str, Tuple[Sequence[str], List[Sequence[str]], List[str]]]" = OrderedDict()


class ExperimentReport:
    """Accumulates the regenerated rows of one experiment."""

    def __init__(self, experiment: str, header: Sequence[str]):
        self.experiment = experiment
        if experiment not in _REPORT:
            _REPORT[experiment] = (tuple(header), [], [])

    def add_row(self, *values: object) -> None:
        """Record one regenerated row (rendered with ``str``)."""
        _REPORT[self.experiment][1].append(tuple(str(v) for v in values))

    def add_note(self, note: str) -> None:
        """Record a free-form note below the table."""
        _REPORT[self.experiment][2].append(note)


@pytest.fixture
def experiment_report():
    """Factory fixture: ``experiment_report("Table 1", header=[...])``."""

    def factory(experiment: str, header: Sequence[str]) -> ExperimentReport:
        return ExperimentReport(experiment, header)

    return factory


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "regenerated paper tables and examples")
    for experiment, (header, rows, notes) in _REPORT.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {experiment} ---")
        if rows:
            terminalreporter.write_line(render_table(header, rows))
        for note in notes:
            terminalreporter.write_line(f"  note: {note}")
