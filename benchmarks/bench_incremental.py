"""Incremental audit engine: delta-time re-audit vs. full recomputation.

The gate of the incremental layer (:class:`LiveAuditSession` +
symmetric ``delta_apply`` across the engines): on a 10^4-fact
store-backed workload, re-auditing after a one-fact change must be at
least :data:`MIN_INCREMENTAL_SPEEDUP` faster than recomputing every
tracked query from scratch — and the maintained answers must stay
*identical* to a from-scratch reference audit after every delta, both
on the default in-memory engine and on the sql engine over a live
:class:`SQLiteFactStore`.

A second experiment replays a seeded delta stream through a 2-worker
fleet (router + pre-forked workers, deltas routed to the shard owning
the warm session) and checks the streamed verdicts against a
from-scratch audit of the final state.

Results land in ``BENCH_incremental.json``;
``benchmarks/check_trajectory.py`` re-derives the embedded
``required_*`` gates on every run.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.cq import evaluate, eval_engine_scope, q
from repro.io import schema_from_dict
from repro.relational import Domain, Fact, RelationSchema, Schema
from repro.session import LiveAuditSession, fact_from_document
from repro.service import AuditServiceClient, FleetThread
from repro.storage import SQLiteFactStore
from repro.workload import (
    DeltaStreamSpec,
    InstanceSpec,
    delta_stream_state,
    generate_delta_stream,
    generate_facts,
    replay_workload,
)

#: Required speedup of one-fact re-audit over full recomputation.
MIN_INCREMENTAL_SPEEDUP = 10.0

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_incremental.json")

_RESULTS: dict = {}

SECRETS = {"join": "Secret(x, z) :- R(x, y), S(y, z)"}
VIEWS = {"left": "V(x) :- R(x, y)", "right": "W(z) :- S(y, z)"}
SPEC = InstanceSpec(seed=17, facts=10_000, relations={"R": 2, "S": 2}, domain_size=2_000)

#: Single-fact deltas driven through each session: alternating inserts
#: of fresh facts and deletes of facts known to be present.
DELTA_ROUNDS = 10


def _tracked_queries():
    return {name: q(text) for name, text in {**SECRETS, **VIEWS}.items()}


def _delta_plan(facts):
    """Deterministic (added, removed) single-fact deltas for one run."""
    present = sorted(facts)
    deltas = []
    for round_index in range(DELTA_ROUNDS):
        if round_index % 2 == 0:
            fact = Fact("R", (100_000 + round_index, 100_000 + round_index))
            deltas.append(((fact,), ()))
        else:
            deltas.append(((), (present[round_index],)))
    return deltas


def _run_variant(name, live, engine, facts, report):
    """Time incremental deltas vs. from-scratch recomputation.

    Returns the row for the JSON pack.  Every delta is followed by an
    untimed verification pass: the maintained answers must equal what a
    fresh evaluation of each tracked query over the post-delta state
    computes.
    """
    # Warm both paths once so neither timed region pays first-use costs.
    warm = Fact("R", (99_999, 99_999))
    live.apply_delta(added=[warm])
    live.apply_delta(removed=[warm])
    with eval_engine_scope(engine):
        for query in _tracked_queries().values():
            evaluate(query, live.state)

    incremental_total = full_total = 0.0
    for added, removed in _delta_plan(facts):
        gc.collect()
        started = time.perf_counter()
        live.apply_delta(added=added, removed=removed)
        incremental_total += time.perf_counter() - started

        # The comparison point: what a non-incremental deployment pays —
        # re-evaluating every tracked query from scratch (fresh query
        # objects, so plan compilation is included) over the new state.
        fresh_queries = _tracked_queries()
        gc.collect()
        with eval_engine_scope(engine):
            started = time.perf_counter()
            fresh = {
                qname: evaluate(query, live.state)
                for qname, query in fresh_queries.items()
            }
            full_total += time.perf_counter() - started

        check = live.self_check()
        assert check["consistent"], check["mismatches"]
        assert fresh  # the workload is non-trivial

    speedup = full_total / incremental_total
    stats = dict(live.stats)
    report.add_row(
        name,
        len(facts),
        DELTA_ROUNDS,
        f"{full_total / DELTA_ROUNDS * 1000:.1f}",
        f"{incremental_total / DELTA_ROUNDS * 1000:.2f}",
        f"{speedup:.0f}x",
    )
    return {
        "variant": name,
        "facts": len(facts),
        "deltas": DELTA_ROUNDS,
        "full_seconds_per_delta": round(full_total / DELTA_ROUNDS, 6),
        "incremental_seconds_per_delta": round(incremental_total / DELTA_ROUNDS, 6),
        "speedup": round(speedup, 2),
        "memos_retained": stats["memos_retained"],
        "queries_reaudited": stats["queries_reaudited"],
        "verdicts_consistent": True,
    }


def test_incremental_reaudit_speedup(experiment_report):
    report = experiment_report(
        "Incremental audit — one-fact re-audit vs. full recomputation (10^4 facts)",
        ("variant", "facts", "deltas", "full (ms/delta)", "incr (ms/delta)", "speedup"),
    )
    facts = sorted(generate_facts(SPEC))
    schema = Schema(
        [RelationSchema("R", ("a0", "a1")), RelationSchema("S", ("a0", "a1"))],
        domain=Domain(range(SPEC.domain_size)),
    )

    rows = []

    memory_live = LiveAuditSession(
        schema, secrets=SECRETS, views=VIEWS, facts=facts
    )
    rows.append(_run_variant("in-memory/compiled", memory_live, None, facts, report))

    store = SQLiteFactStore()
    try:
        store_live = LiveAuditSession(
            schema, secrets=SECRETS, views=VIEWS, facts=facts, store=store
        )
        store_row = _run_variant("store-backed/sql", store_live, "sql", facts, report)
    finally:
        store.close()
    # The ISSUE gate is the store-backed 10^4-fact workload.
    store_row["required_speedup"] = MIN_INCREMENTAL_SPEEDUP
    rows.append(store_row)

    report.add_note(
        f"gate: store-backed speedup ≥ {MIN_INCREMENTAL_SPEEDUP}x; every delta "
        "verified against a from-scratch evaluation of all tracked queries"
    )
    _RESULTS["one_fact_reaudit"] = {
        "workload": "join-secret-two-views-10k-facts",
        "variants": rows,
    }
    _write_json()
    for row in rows:
        assert row["speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
            f"{row['variant']}: incremental re-audit was only "
            f"{row['speedup']:.2f}x faster than full recomputation "
            f"(required ≥ {MIN_INCREMENTAL_SPEEDUP}x)"
        )


def test_fleet_delta_stream_matches_reference(experiment_report):
    report = experiment_report(
        "Incremental audit — 2-worker fleet delta stream vs. from-scratch reference",
        ("deltas", "notifications", "replay (s)", "verdicts"),
    )
    spec = DeltaStreamSpec(
        seed=29,
        deltas=32,
        live="bench-live",
        instance=InstanceSpec(seed=29, facts=300, domain_size=60),
    )
    requests = generate_delta_stream(spec)
    started = time.perf_counter()
    with FleetThread(workers=2) as fleet:
        summary = replay_workload(
            requests, *fleet.address, concurrency=2, subscribe="bench-live"
        )
        with AuditServiceClient(*fleet.address) as client:
            final = client.call("live-audit", live="bench-live")
    elapsed = time.perf_counter() - started
    assert summary["errors"] == 0, summary
    assert summary["ok"] == len(requests)

    # From-scratch reference over the generator's mirrored final state.
    facts, views = delta_stream_state(requests)
    reference = LiveAuditSession(
        schema_from_dict(requests[0]["schema"]),
        secrets=requests[0]["secrets"],
        views=views,
        facts=[fact_from_document(doc) for doc in facts],
    )
    expected = reference.verdicts()

    def _clean(doc):
        return {
            name: {k: v for k, v in entry.items() if k != "changed"}
            for name, entry in doc["secrets"].items()
        }

    assert _clean(final) == _clean(expected)
    assert final["fact_count"] == expected["fact_count"]
    notes = summary["notifications"]
    assert notes and notes[-1]["fact_count"] == expected["fact_count"]
    assert _clean(notes[-1]) == _clean(expected)

    report.add_row(spec.deltas, len(notes), f"{elapsed:.2f}", "match")
    report.add_note(
        "every streamed verdict chain ends in the from-scratch reference verdict"
    )
    _RESULTS["fleet_delta_stream"] = {
        "workload": "seeded-delta-stream-2-workers",
        "deltas": spec.deltas,
        "notifications": len(notes),
        "replay_seconds": round(elapsed, 3),
        "verdicts_match_reference": True,
        "completed": True,
    }
    _write_json()


def _write_json() -> None:
    JSON_PATH.write_text(
        json.dumps({"benchmark": "incremental", **_RESULTS}, indent=2) + "\n"
    )
