"""Empirical validation of **Theorems 4.5 and 4.8** and the FKG inequality.

On a battery of randomly generated boolean query/view pairs over a small
binary relation, the harness checks (and times) three facts the proofs
rely on:

* Theorem 4.5: crit-disjointness coincides with exact statistical
  independence under non-trivial distributions,
* Theorem 4.8: the security verdict is identical across different
  non-trivial distributions,
* FKG: monotone queries are never negatively correlated,
  with equality exactly in the crit-disjoint case.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Tuple

import pytest

from repro import Dictionary
from repro.bench import WorkloadConfig, random_query, random_schema
from repro.core import critical_tuples, verify_security_probabilistically
from repro.probability import ExactEngine, QueryTrue
from repro.relational import Schema

CONFIG = WorkloadConfig(
    relations=1, max_arity=2, domain_size=2, max_subgoals=2, max_variables=2,
    constant_probability=0.4,
)

TITLE = "Theorems 4.5 / 4.8 and FKG — empirical validation on random pairs"
HEADER = ("check", "pairs", "agreements", "violations")


def _random_pairs(count: int, seed: int) -> List[Tuple[Schema, object, object]]:
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        schema = random_schema(CONFIG, rng)
        secret = random_query(schema, CONFIG, rng, name="S", boolean=True)
        view = random_query(schema, CONFIG, rng, name="V", boolean=True)
        pairs.append((schema, secret, view))
    return pairs


def test_theorem_4_5_agreement(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    pairs = _random_pairs(20, seed=42)

    def check() -> Tuple[int, int]:
        agreements = violations = 0
        for schema, secret, view in pairs:
            disjoint = not (
                critical_tuples(secret, schema) & critical_tuples(view, schema)
            )
            dictionary = Dictionary.uniform(schema, Fraction(1, 2))
            independent = verify_security_probabilistically(secret, view, dictionary)
            if disjoint == independent:
                agreements += 1
            else:
                violations += 1
        return agreements, violations

    agreements, violations = benchmark.pedantic(check, rounds=1, iterations=1)
    report.add_row("Theorem 4.5 (crit-disjoint ⟺ independent)", len(pairs), agreements, violations)
    assert violations == 0


def test_theorem_4_8_distribution_independence(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    pairs = _random_pairs(15, seed=77)
    distributions = [Fraction(1, 2), Fraction(1, 5), Fraction(4, 5)]

    def check() -> Tuple[int, int]:
        agreements = violations = 0
        for schema, secret, view in pairs:
            verdicts = {
                verify_security_probabilistically(
                    secret, view, Dictionary.uniform(schema, p)
                )
                for p in distributions
            }
            if len(verdicts) == 1:
                agreements += 1
            else:
                violations += 1
        return agreements, violations

    agreements, violations = benchmark.pedantic(check, rounds=1, iterations=1)
    report.add_row(
        "Theorem 4.8 (same verdict across non-trivial distributions)",
        len(pairs),
        agreements,
        violations,
    )
    assert violations == 0


def test_fkg_inequality(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    pairs = _random_pairs(20, seed=123)

    def check() -> Tuple[int, int]:
        holds = violations = 0
        for schema, secret, view in pairs:
            engine = ExactEngine(Dictionary.uniform(schema, Fraction(1, 3)))
            joint = engine.joint_probability([QueryTrue(secret), QueryTrue(view)])
            product = engine.probability(QueryTrue(secret)) * engine.probability(
                QueryTrue(view)
            )
            if joint >= product:
                holds += 1
            else:
                violations += 1
            disjoint = not (
                critical_tuples(secret, schema) & critical_tuples(view, schema)
            )
            if disjoint:
                assert joint == product
        return holds, violations

    holds, violations = benchmark.pedantic(check, rounds=1, iterations=1)
    report.add_row("FKG (P[S∧V] ≥ P[S]·P[V] for monotone queries)", len(pairs), holds, violations)
    assert violations == 0
