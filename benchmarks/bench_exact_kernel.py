"""Exact-kernel ablation: seed enumeration vs. compiled kernel.

The compiled :class:`~repro.probability.kernel.ProbabilityKernel` must
return *Fraction-identical* joint answer distributions to the seed
:class:`~repro.probability.engine.NaiveExactEngine` while being at
least 5x faster on the Definition 4.1 exact-verification workloads —
joint answer distributions (plus the Eq. (4) verdict derived from them)
on supports of at least 12 facts.  This is the acceptance gate wired
into CI.

Two workload shapes are timed:

* ``emp-12-connected`` — Table 1 row 2 over ``Emp(name, department,
  phone)`` with three phone values: one 12-fact *connected* support, the
  regime where the win comes purely from compile-once + bitset
  evaluation + meet-in-the-middle mass tables.
* ``three-relations-12-disconnected`` — a manufacturing-style schema
  whose secret and views touch three disjoint relations (4 facts each):
  the kernel factorizes the 12-fact support into three 4-fact components
  (``3 · 2^4`` sub-instances instead of ``2^12``) on top of the compiled
  evaluation.

Besides the pytest gate, the run writes ``BENCH_exact_kernel.json``
(workload, seed-path time, kernel time, speedup) so the perf trajectory
is machine-readable across PRs.
"""

from __future__ import annotations

import json
import time
from fractions import Fraction
from pathlib import Path

from repro.bench import employee_schema
from repro.cq.parser import parse_query
from repro.probability import Dictionary, NaiveExactEngine, ProbabilityKernel
from repro.relational import Domain, RelationSchema, Schema

#: Required speedup of the kernel over the seed path (acceptance criterion).
MIN_SPEEDUP = 5.0

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_exact_kernel.json")


def _verdict_from_joint(joint):
    """The Eq. (4) verdict computed from a joint answer distribution."""
    secret_marginal, views_marginal = {}, {}
    for key, probability in joint.items():
        secret_marginal[key[0]] = secret_marginal.get(key[0], Fraction(0)) + probability
        views_marginal[key[1:]] = views_marginal.get(key[1:], Fraction(0)) + probability
    for secret_answer, p_secret in secret_marginal.items():
        for view_answers, p_views in views_marginal.items():
            p_joint = joint.get((secret_answer, *view_answers), Fraction(0))
            if p_joint != p_secret * p_views:
                return False
    return True


def _connected_workload():
    """Table 1 row 2 with 3 phone values: a 12-fact connected support."""
    schema = employee_schema(names=2, departments=2, phones=3)
    dictionary = Dictionary.uniform(schema, Fraction(1, 3))
    secret = parse_query("S2(n, p) :- Emp(n, d, p)")
    views = [
        parse_query("V2(n, d) :- Emp(n, d, p)"),
        parse_query("V2p(d, p) :- Emp(n, d, p)"),
    ]
    return "emp-12-connected", dictionary, secret, views, 12


def _disconnected_workload():
    """Secret and views over three disjoint relations of 4 facts each."""
    products = Domain(["widget", "gadget"], name="products")
    money = Domain([10, 20], name="money")
    schema = Schema(
        [
            RelationSchema("Cost", ("product", "cost"), {"product": products, "cost": money}),
            RelationSchema("Labor", ("product", "lc"), {"product": products, "lc": money}),
            RelationSchema("Part", ("product", "pc"), {"product": products, "pc": money}),
        ]
    )
    dictionary = Dictionary.uniform(schema, Fraction(1, 4))
    secret = parse_query("S(p, c) :- Cost(p, c)")
    views = [
        parse_query("V1(p, l) :- Labor(p, l)"),
        parse_query("V2(p) :- Part(p, pc)"),
    ]
    return "three-relations-12-disconnected", dictionary, secret, views, 12


def _time_seed_path(dictionary, secret, views):
    engine = NaiveExactEngine(dictionary)
    started = time.perf_counter()
    joint = engine.joint_answer_distribution([secret, *views])
    verdict = _verdict_from_joint(joint)
    return time.perf_counter() - started, joint, verdict


def _time_kernel_path(dictionary, secret, views):
    # A cold kernel (not the process-shared one) so the timed region
    # includes compilation — the honest end-to-end cost.
    kernel = ProbabilityKernel(dictionary)
    started = time.perf_counter()
    joint = kernel.joint_answer_distribution([secret, *views])
    verdict = _verdict_from_joint(joint)
    return time.perf_counter() - started, joint, verdict


def test_kernel_speedup_on_definition_4_1_workloads(experiment_report):
    report = experiment_report(
        "Exact kernel — seed enumeration vs. compiled kernel (Definition 4.1)",
        ("workload", "support", "seed (s)", "kernel (s)", "speedup", "identical"),
    )
    results = []
    seed_total = 0.0
    kernel_total = 0.0
    for workload in (_connected_workload, _disconnected_workload):
        name, dictionary, secret, views, support = workload()
        seed_elapsed, seed_joint, seed_verdict = _time_seed_path(
            dictionary, secret, views
        )
        kernel_elapsed, kernel_joint, kernel_verdict = _time_kernel_path(
            dictionary, secret, views
        )
        assert kernel_joint == seed_joint, (
            f"{name}: kernel joint distribution differs from the seed enumeration"
        )
        assert kernel_verdict == seed_verdict
        speedup = seed_elapsed / kernel_elapsed
        seed_total += seed_elapsed
        kernel_total += kernel_elapsed
        results.append(
            {
                "workload": name,
                "support_facts": support,
                "seed_seconds": round(seed_elapsed, 6),
                "kernel_seconds": round(kernel_elapsed, 6),
                "speedup": round(speedup, 2),
                "verdict": seed_verdict,
            }
        )
        report.add_row(
            name,
            support,
            f"{seed_elapsed:.3f}",
            f"{kernel_elapsed:.3f}",
            f"{speedup:.1f}x",
            "yes",
        )

    overall = seed_total / kernel_total
    report.add_note(f"overall speedup: {overall:.1f}x (required ≥ {MIN_SPEEDUP}x)")
    JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "exact_kernel",
                "required_speedup": MIN_SPEEDUP,
                "overall_speedup": round(overall, 2),
                "workloads": results,
            },
            indent=2,
        )
        + "\n"
    )
    assert overall >= MIN_SPEEDUP, (
        f"the compiled kernel was only {overall:.2f}x faster than the seed "
        f"enumeration on the Definition 4.1 workloads (required ≥ {MIN_SPEEDUP}x)"
    )


def test_shared_kernel_amortises_repeat_verification(experiment_report):
    """Second verification of the same (queries, dictionary) is a cache hit."""
    report = experiment_report(
        "Exact kernel — shared joint distributions",
        ("call", "enumerations", "time (s)"),
    )
    from repro.core.security import (
        independence_gap,
        verify_security_probabilistically,
    )

    name, dictionary, secret, views, _ = _connected_workload()
    kernel = ProbabilityKernel.shared(dictionary)
    started = time.perf_counter()
    verify_security_probabilistically(secret, views, dictionary)
    first = time.perf_counter() - started
    enumerations = kernel.stats["distributions"]
    started = time.perf_counter()
    independence_gap(secret, views, dictionary)
    second = time.perf_counter() - started
    assert kernel.stats["distributions"] == enumerations, (
        "independence_gap re-enumerated a joint distribution the shared kernel "
        "had already computed"
    )
    report.add_row("verify (cold)", enumerations, f"{first:.3f}")
    report.add_row("gap (shared)", 0, f"{second:.3f}")
