"""Scaling and ablation benchmark (no counterpart table in the paper).

The paper proves the decision problem Π₂ᵖ-complete and offers a cheap
practical algorithm; this benchmark quantifies that trade-off on a
random conjunctive-query workload:

* wall-clock cost of the exact minimal-instance decision vs. the naive
  instance-enumeration decision vs. the practical unification check, as
  the domain grows;
* the agreement rate of the practical algorithm with the exact decision
  (it must never claim security for an insecure pair; its false alarms
  are the "rare false positives" the paper mentions).
"""

from __future__ import annotations

import time
from typing import List, Tuple

import pytest

from repro.bench import WorkloadConfig, scaling_workload
from repro.core import (
    critical_tuples,
    critical_tuples_naive,
    practical_security_check,
)

CONFIG = WorkloadConfig(
    relations=1,
    max_arity=2,
    domain_size=2,  # overridden per sweep point
    max_subgoals=2,
    max_variables=2,
    constant_probability=0.4,
)

TITLE = "Scaling ablation — exact vs. naive vs. practical decision procedures"
HEADER = (
    "domain size",
    "pairs",
    "exact (minimal-instance) s",
    "naive (enumeration) s",
    "practical (unification) s",
    "practical agrees",
    "practical false alarms",
)


def _decide_exact(secret, view, schema) -> bool:
    return not (critical_tuples(secret, schema) & critical_tuples(view, schema))


def _decide_naive(secret, view, schema) -> bool:
    return not (
        critical_tuples_naive(secret, schema) & critical_tuples_naive(view, schema)
    )


def _sweep_point(domain_size: int, pairs_per_size: int) -> Tuple[float, float, float, int, int, int]:
    workload = scaling_workload([domain_size], pairs_per_size=pairs_per_size, config=CONFIG)
    exact_time = naive_time = practical_time = 0.0
    agreements = false_alarms = 0
    include_naive = domain_size <= 3  # 2^(d^2) instances: cap the naive run
    for _, schema, secret, view in workload:
        start = time.perf_counter()
        exact = _decide_exact(secret, view, schema)
        exact_time += time.perf_counter() - start

        if include_naive:
            start = time.perf_counter()
            naive = _decide_naive(secret, view, schema)
            naive_time += time.perf_counter() - start
            assert naive == exact

        start = time.perf_counter()
        quick = practical_security_check(secret, view)
        practical_time += time.perf_counter() - start

        if quick.certainly_secure:
            assert exact  # soundness: never certify an insecure pair
        if quick.certainly_secure == exact:
            agreements += 1
        elif not quick.certainly_secure and exact:
            false_alarms += 1
    return exact_time, naive_time, practical_time, agreements, false_alarms, len(workload)


def test_exact_vs_sampled_probability(benchmark, experiment_report):
    """Ablation: exact enumeration vs Monte-Carlo estimation of P[V̄ = v̄]."""
    from fractions import Fraction

    from repro import Dictionary, q
    from repro.bench import binary_schema
    from repro.probability import ExactEngine, MonteCarloSampler, QueryTrue

    report = experiment_report(
        "Ablation — exact enumeration vs Monte-Carlo estimation",
        ("query", "exact P", "sampled P (10k draws)", "abs. error", "exact s", "sampled s"),
    )
    schema = binary_schema(("a", "b", "c"))
    dictionary = Dictionary.uniform(schema, Fraction(1, 3))
    query = q("Q() :- R(x, y), R(y, z), x != z")
    event = QueryTrue(query)

    start = time.perf_counter()
    exact = ExactEngine(dictionary).probability(event)
    exact_seconds = time.perf_counter() - start

    sampler = MonteCarloSampler(dictionary, seed=3)

    def sampled():
        return sampler.estimate_probability(event, samples=10_000)

    sampling_start = time.perf_counter()
    estimate = benchmark.pedantic(sampled, rounds=1, iterations=1)
    sampled_seconds = time.perf_counter() - sampling_start

    error = abs(float(exact) - estimate.value)
    report.add_row(
        repr(query),
        f"{float(exact):.4f}",
        f"{estimate.value:.4f}",
        f"{error:.4f}",
        f"{exact_seconds:.3f}",
        f"{sampled_seconds:.3f}",
    )
    assert error <= 4 * estimate.standard_error + 1e-6


@pytest.mark.parametrize("domain_size", [2, 3, 4, 5])
def test_scaling_with_domain_size(benchmark, experiment_report, domain_size):
    report = experiment_report(TITLE, HEADER)
    pairs_per_size = 6
    exact_t, naive_t, practical_t, agreements, false_alarms, total = benchmark.pedantic(
        _sweep_point, args=(domain_size, pairs_per_size), rounds=1, iterations=1
    )
    report.add_row(
        domain_size,
        total,
        f"{exact_t:.4f}",
        f"{naive_t:.4f}" if naive_t else "skipped",
        f"{practical_t:.6f}",
        f"{agreements}/{total}",
        false_alarms,
    )
    # The practical check is orders of magnitude cheaper than the exact one.
    assert practical_t < exact_t
    # And it never mis-certifies (checked inside the sweep); the remaining
    # disagreements are false alarms only.
    assert agreements + false_alarms == total
