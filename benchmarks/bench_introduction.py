"""Reproduction of the **introduction's collusion guessing attack**.

"If only four people work in each department then an adversary can guess
any person's phone number with a 25% chance of success by trying any of
the four phone numbers in her department."

The harness publishes the two projections (name, department) and
(department, phone) of a single-department company, conditions on the
published answers, and measures the adversary's best-guess probability
for one person's phone as the department grows.  The success probability
starts far above the prior and falls towards ``1/k`` as ``k`` people
share the department — the paper's 25% for ``k = 4`` (the exact
computation is run for ``k = 2, 3``; larger departments exceed the exact
engine's enumeration budget and are the regime where the asymptotic
analysis of Section 6.2 takes over).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import guessing_report
from repro.relational import Domain, RelationSchema, Schema

TITLE = "Introduction — collusion guessing attack (≈ 1/k success per person)"
HEADER = ("people in the department", "prior P[alice↦phone]", "posterior best guess", "1/k")

SECRET = q("S(n, p) :- Emp(n, d, p)")
NAME_DEPARTMENT = q("Vnd(n, d) :- Emp(n, d, p)")
DEPARTMENT_PHONE = q("Vdp(d, p) :- Emp(n, d, p)")


def _department_schema(k: int) -> Schema:
    people = tuple(f"person{i}" for i in range(k))
    phones = tuple(f"x{i}" for i in range(k))
    return Schema(
        [
            RelationSchema(
                "Emp",
                ("name", "department", "phone"),
                {
                    "name": Domain.of(*people),
                    "department": Domain.of("hr"),
                    "phone": Domain.of(*phones),
                },
            )
        ]
    )


def _attack(k: int):
    schema = _department_schema(k)
    people = [f"person{i}" for i in range(k)]
    phones = [f"x{i}" for i in range(k)]
    dictionary = Dictionary.uniform(schema, Fraction(1, k * k))
    return guessing_report(
        SECRET,
        [NAME_DEPARTMENT, DEPARTMENT_PHONE],
        [[(name, "hr") for name in people], [("hr", phone) for phone in phones]],
        dictionary,
        restrict_to_rows=[("person0", phone) for phone in phones],
    )


@pytest.mark.parametrize("department_size", [2, 3])
def test_guessing_probability_tracks_department_size(
    benchmark, experiment_report, department_size
):
    report = experiment_report(TITLE, HEADER)
    attack = benchmark.pedantic(_attack, args=(department_size,), rounds=1, iterations=1)
    report.add_row(
        department_size,
        f"{float(attack.prior):.3f}",
        f"{float(attack.posterior):.3f}",
        f"{1 / department_size:.3f}",
    )
    if department_size == 3:
        report.add_note(
            "the guess probability falls towards 1/k as the department grows; "
            "the paper's '25% chance' is the k = 4 point of the same series"
        )
    # The collusion always gives the adversary at least the 1/k guess the
    # paper describes, and a strict improvement over the prior.
    assert attack.posterior >= Fraction(1, department_size)
    assert attack.posterior > attack.prior
    # Larger departments dilute the guess.
    if department_size == 3:
        assert attack.posterior < _attack(2).posterior
