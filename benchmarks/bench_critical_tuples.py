"""Reproduction of **Examples 4.6 / 4.7** and the Theorem 4.10 example.

Regenerates the critical-tuple sets the paper lists, the resulting
security verdicts, and the subtle example after Theorem 4.10 of a tuple
that is a homomorphic image of a subgoal yet not critical.  Also times
the two critical-tuple procedures (minimal-instance search vs. naive
instance enumeration) on the same inputs — the ablation DESIGN.md calls
out.
"""

from __future__ import annotations

import pytest

from repro import q
from repro.bench import binary_schema
from repro.core import (
    candidate_critical_facts,
    critical_tuples,
    critical_tuples_naive,
    is_critical,
)
from repro.relational import Domain, Fact, RelationSchema, Schema

SCHEMA = binary_schema(("a", "b"))


def test_example_4_6_critical_tuples(benchmark, experiment_report):
    report = experiment_report(
        "Examples 4.6 / 4.7 — critical tuples and security",
        ("example", "query", "crit (measured)", "verdict"),
    )
    view = q("V(x) :- R(x, y)")
    secret = q("S(y) :- R(x, y)")
    view_crit = benchmark(critical_tuples, view, SCHEMA)
    secret_crit = critical_tuples(secret, SCHEMA)

    report.add_row("4.6", "V(x):-R(x,y)", sorted(map(repr, view_crit)), "")
    report.add_row("4.6", "S(y):-R(x,y)", sorted(map(repr, secret_crit)), "¬(S | V)")

    all_facts = {Fact("R", (x, y)) for x in ("a", "b") for y in ("a", "b")}
    assert view_crit == all_facts
    assert secret_crit == all_facts
    assert view_crit & secret_crit


def test_example_4_7_critical_tuples(benchmark, experiment_report):
    report = experiment_report(
        "Examples 4.6 / 4.7 — critical tuples and security",
        ("example", "query", "crit (measured)", "verdict"),
    )
    view = q("V(x) :- R(x, 'b')")
    secret = q("S(y) :- R(y, 'a')")
    view_crit = benchmark(critical_tuples, view, SCHEMA)
    secret_crit = critical_tuples(secret, SCHEMA)

    report.add_row("4.7", "V(x):-R(x,b)", sorted(map(repr, view_crit)), "")
    report.add_row("4.7", "S(y):-R(y,a)", sorted(map(repr, secret_crit)), "S | V")

    assert view_crit == {Fact("R", ("a", "b")), Fact("R", ("b", "b"))}
    assert secret_crit == {Fact("R", ("a", "a")), Fact("R", ("b", "a"))}
    assert not view_crit & secret_crit


def test_theorem_4_10_non_critical_image(benchmark, experiment_report):
    report = experiment_report(
        "Theorem 4.10 example — subgoal image that is not critical",
        ("tuple", "homomorphic image of a subgoal?", "critical?"),
    )
    schema = Schema(
        [RelationSchema("R", tuple(f"a{i}" for i in range(5)))],
        domain=Domain.of("a", "b", "c"),
    )
    query = q("Q() :- R(x, y, z, z, u), R(x, x, x, y, y)")
    image = Fact("R", ("a", "a", "b", "b", "c"))
    collapsed = Fact("R", ("a", "a", "a", "a", "a"))

    image_critical = benchmark(is_critical, image, query, schema)
    collapsed_critical = is_critical(collapsed, query, schema)
    candidates = candidate_critical_facts(query, schema)

    report.add_row(repr(image), image in candidates, image_critical)
    report.add_row(repr(collapsed), collapsed in candidates, collapsed_critical)

    assert image in candidates and not image_critical
    assert collapsed_critical


@pytest.mark.parametrize("strategy", ["minimal-instance", "naive-enumeration"])
def test_critical_tuple_strategy_ablation(benchmark, experiment_report, strategy):
    report = experiment_report(
        "Ablation — critical-tuple search strategies (same result, different cost)",
        ("strategy", "query", "crit size"),
    )
    query = q("Q() :- R('a', x), R(x, y)")
    if strategy == "minimal-instance":
        result = benchmark(critical_tuples, query, SCHEMA)
    else:
        result = benchmark(critical_tuples_naive, query, SCHEMA)
    report.add_row(strategy, repr(query), len(result))
    assert result == critical_tuples_naive(query, SCHEMA)
