"""Reproduction of **Examples 6.2 / 6.3**: measuring disclosures and collusion.

Regenerates the qualitative series the paper derives analytically:

* ``leak(S, V_d)`` is *minute* and shrinks as the expected database size
  grows (Example 6.2's ``ε ≈ 1/m``);
* publishing ``V_{nd}`` (names + departments) leaks more than ``V_d``;
* colluding ``V_{nd}`` with ``V_{dp}`` leaks more still (Example 6.3);
* the Theorem 6.1 bound ``ε²/(1−ε²)`` dominates the measured leakage
  whenever its hypothesis (``ε < 1``) holds.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.bench import employee_schema
from repro.core import epsilon_of_theorem_6_1, leakage_bound_from_epsilon, positive_leakage

SCHEMA = employee_schema(names=2, departments=2, phones=2)
SECRET = q("S(n, p) :- Emp(n, d, p)")
V_DEPARTMENT = q("Vd(d) :- Emp(n, d, p)")
V_NAME_DEPARTMENT = q("Vnd(n, d) :- Emp(n, d, p)")
V_DEPARTMENT_PHONE = q("Vdp(d, p) :- Emp(n, d, p)")

TITLE = "Examples 6.2 / 6.3 — leakage and collusion"
HEADER = ("view(s)", "expected size m", "leak(S, V̄)", "ε (Thm 6.1)", "bound ε²/(1−ε²)")


def _measure(views, dictionary):
    leak = positive_leakage(SECRET, views, dictionary)
    epsilon = epsilon_of_theorem_6_1(SECRET, views, dictionary)
    bound = leakage_bound_from_epsilon(epsilon) if epsilon < 1 else float("inf")
    return leak, epsilon, bound


@pytest.mark.parametrize("probability", [Fraction(1, 8), Fraction(1, 4), Fraction(1, 2)])
def test_example_6_2_minute_leakage(benchmark, experiment_report, probability):
    report = experiment_report(TITLE, HEADER)
    dictionary = Dictionary.uniform(SCHEMA, probability)
    leak, epsilon, bound = benchmark.pedantic(
        _measure, args=([V_DEPARTMENT], dictionary), rounds=1, iterations=1
    )
    m = float(dictionary.expected_instance_size())
    report.add_row(
        "Vd(d)", f"{m:.1f}", f"{float(leak.leakage):.4f}", f"{float(epsilon):.4f}",
        f"{bound:.4f}" if bound != float("inf") else "vacuous",
    )
    assert leak.leakage > 0
    if epsilon < 1:
        assert float(leak.leakage) <= bound + 1e-9


def test_example_6_3_stronger_view_and_collusion(benchmark, experiment_report):
    report = experiment_report(TITLE, HEADER)
    dictionary = Dictionary.uniform(SCHEMA, Fraction(1, 4))
    m = float(dictionary.expected_instance_size())

    def run():
        single = positive_leakage(SECRET, V_NAME_DEPARTMENT, dictionary)
        collusion = positive_leakage(
            SECRET, [V_NAME_DEPARTMENT, V_DEPARTMENT_PHONE], dictionary
        )
        return single, collusion

    single, collusion = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = positive_leakage(SECRET, V_DEPARTMENT, dictionary)

    report.add_row("Vnd(n,d)", f"{m:.1f}", f"{float(single.leakage):.4f}", "-", "-")
    report.add_row(
        "Vnd(n,d) + Vdp(d,p) (collusion)", f"{m:.1f}", f"{float(collusion.leakage):.4f}", "-", "-"
    )
    report.add_note(
        "ordering reproduced: leak(S,Vd) < leak(S,Vnd) < leak(S,{Vnd,Vdp}) — "
        "richer views and collusion increase the disclosure (Example 6.3)"
    )

    assert baseline.leakage < single.leakage < collusion.leakage


def test_example_6_2_leakage_shrinks_with_database_size(benchmark, experiment_report):
    report = experiment_report(
        "Example 6.2 — leakage vs expected database size (ε ≈ 1/m)",
        ("expected size m", "leak(S, Vd)", "ε"),
    )

    def sweep():
        rows = []
        for probability in (Fraction(1, 8), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)):
            dictionary = Dictionary.uniform(SCHEMA, probability)
            leak = positive_leakage(SECRET, V_DEPARTMENT, dictionary)
            epsilon = epsilon_of_theorem_6_1(SECRET, V_DEPARTMENT, dictionary)
            rows.append((float(dictionary.expected_instance_size()), leak, epsilon))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for m, leak, epsilon in rows:
        report.add_row(f"{m:.1f}", f"{float(leak.leakage):.4f}", f"{float(epsilon):.4f}")
    report.add_note(
        "the measured leakage falls monotonically as the database grows denser "
        "(the 1/m effect of Example 6.2); ε itself is not monotone on this tiny "
        "domain because at high density the common tuple is likely present anyway"
    )

    leaks = [float(leak.leakage) for _, leak, _ in rows]
    assert leaks == sorted(leaks, reverse=True)
    assert leaks[-1] < leaks[0] / 100
