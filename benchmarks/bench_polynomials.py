"""Reproduction of **Example 4.12**: the query polynomial ``f_Q``.

Regenerates ``f_Q = x1 + x2·x4 − x1·x2·x4`` for
``Q():-R(a,x),R(x,x)`` over ``D = {a,b}``, verifies the product rule
``f_{Q∧Q'} = f_Q·f_{Q'}`` for the disjoint query ``Q'():-R(b,a)``, and
checks the degree/critical-tuple correspondence of Proposition 4.13.
"""

from __future__ import annotations

from fractions import Fraction

from repro import q
from repro.bench import binary_schema
from repro.core import critical_tuples
from repro.cq import conjoin
from repro.probability import query_polynomial
from repro.relational import Fact

SCHEMA = binary_schema(("a", "b"))
T1, T2, T3, T4 = (
    Fact("R", ("a", "a")),
    Fact("R", ("a", "b")),
    Fact("R", ("b", "a")),
    Fact("R", ("b", "b")),
)
NAMES = {T1: "x1", T2: "x2", T3: "x3", T4: "x4"}
QUERY = q("Q() :- R('a', x), R(x, x)")
OTHER = q("Qp() :- R('b', 'a')")


def test_example_4_12_polynomial(benchmark, experiment_report):
    report = experiment_report(
        "Example 4.12 — query polynomials",
        ("quantity", "paper", "measured"),
    )
    poly = benchmark(query_polynomial, QUERY, [T1, T2, T3, T4])

    report.add_row("f_Q", "x1 + x2*x4 - x1*x2*x4", poly.pretty(NAMES))
    report.add_row(
        "crit(Q) (degree-1 variables)",
        "{t1, t2, t4}",
        sorted(NAMES[f] for f in poly.variables),
    )

    assert poly.pretty(NAMES) == "x1 + x2*x4 - x1*x2*x4"
    assert poly.variables == critical_tuples(QUERY, SCHEMA)


def test_example_4_12_product_rule(benchmark, experiment_report):
    report = experiment_report(
        "Example 4.12 — query polynomials",
        ("quantity", "paper", "measured"),
    )
    f_q = query_polynomial(QUERY, [T1, T2, T4])
    f_qp = query_polynomial(OTHER, [T3])
    joint = benchmark(query_polynomial, conjoin(QUERY, OTHER), [T1, T2, T3, T4])

    factorises = joint == f_q * f_qp
    report.add_row("f_{Q∧Q'} = f_Q × f_{Q'}", "yes (disjoint tuples)", "yes" if factorises else "no")
    report.add_row(
        "f_{Q∧Q'}",
        "(x1 + x2*x4 - x1*x2*x4)·x3",
        joint.pretty(NAMES),
    )
    assert factorises

    # Sanity: evaluating at P(t) = 1/2 gives 10/16 · 1/2 (Q = t1 ∨ (t2 ∧ t4)
    # holds on 10 of the 16 instances, Q' on half of them, independently;
    # the prose of Example 4.12 says "12", but the paper's own polynomial
    # x1 + x2x4 − x1x2x4 evaluates to 10/16 at 1/2 — a typo in the prose).
    value = joint.evaluate({f: Fraction(1, 2) for f in (T1, T2, T3, T4)})
    assert value == Fraction(10, 16) * Fraction(1, 2)
