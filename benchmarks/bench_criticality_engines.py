"""Criticality-engine ablation: minimal search vs. pruned-parallel.

The ``pruned-parallel`` engine must return *identical* critical-tuple
sets to the behaviour-identical ``minimal`` engine while being at least
2x faster on the 3-variable benchmark schemas (the acceptance gate wired
into CI).  The workload is the full set of Table 1 query-view pairs over
``Emp(name, department, phone)`` — every query has exactly the paper's
three variables — analysed over untyped Proposition 4.9 domains: once at
the minimum sound size and once enlarged, the regime where the
``O(|candidates| · |D|^{#vars})`` scan dominates and the symmetry
reduction (27 candidate facts collapse to a handful of orbits) pays off.
"""

from __future__ import annotations

import time

from repro.bench import employee_schema, table1_pairs
from repro.core.criticality import create_criticality_engine
from repro.core.domain_bounds import analysis_domain, untyped_schema

#: Required speedup of the pruned-parallel engine (acceptance criterion).
MIN_SPEEDUP = 2.0

#: Analysis-domain sizes: the Proposition 4.9 minimum for the 3-variable
#: queries, and an enlarged domain (larger domains are always sound).
DOMAIN_SIZES = (3, 6)


def _workload():
    """The Table 1 queries (each with the paper's three variables)."""
    return [query for row in table1_pairs() for query in (row.secret, *row.views)]


def _run(engine, queries, working_schema, domain):
    started = time.perf_counter()
    results = [
        engine.critical_tuples(query, working_schema, domain) for query in queries
    ]
    return time.perf_counter() - started, results


def test_pruned_parallel_engine_speedup(experiment_report):
    report = experiment_report(
        "Criticality engines — minimal vs. pruned-parallel (Table 1 queries)",
        ("|D|", "minimal (s)", "pruned-parallel (s)", "speedup", "identical"),
    )
    schema = employee_schema()
    queries = _workload()
    minimal = create_criticality_engine("minimal")
    pruned = create_criticality_engine("pruned-parallel")

    minimal_total = 0.0
    pruned_total = 0.0
    for size in DOMAIN_SIZES:
        domain = analysis_domain(queries, minimum_size=size)
        working_schema = untyped_schema(schema, domain)
        # Warm-up outside the timed region (imports, first-call overheads).
        pruned.critical_tuples(queries[0], working_schema, domain)
        minimal_elapsed, minimal_sets = _run(minimal, queries, working_schema, domain)
        pruned_elapsed, pruned_sets = _run(pruned, queries, working_schema, domain)
        assert minimal_sets == pruned_sets, (
            f"engines disagree over |D|={len(domain)}"
        )
        minimal_total += minimal_elapsed
        pruned_total += pruned_elapsed
        report.add_row(
            len(domain),
            f"{minimal_elapsed:.3f}",
            f"{pruned_elapsed:.3f}",
            f"{minimal_elapsed / pruned_elapsed:.2f}x",
            "yes",
        )

    speedup = minimal_total / pruned_total
    report.add_note(f"overall speedup: {speedup:.2f}x (required ≥ {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"pruned-parallel was only {speedup:.2f}x faster than the minimal "
        f"engine on the 3-variable benchmark schemas (required ≥ {MIN_SPEEDUP}x)"
    )


def test_engines_agree_on_manufacturing_schema(experiment_report):
    """Cross-validation on the introduction's multi-relation schema."""
    from repro.bench.schemas import manufacturing_schema
    from repro.cq.parser import parse_query

    report = experiment_report(
        "Criticality engines — manufacturing cross-validation",
        ("query", "crit size", "engines agree"),
    )
    schema = manufacturing_schema()
    queries = [
        parse_query("S(p, c) :- Cost(p, c)"),
        parse_query("V1(p, pa) :- Part(p, pa, sp)"),
        parse_query("V3(p) :- Labor(p, lc)"),
    ]
    minimal = create_criticality_engine("minimal")
    pruned = create_criticality_engine("pruned-parallel")
    for query in queries:
        domain = analysis_domain([query])
        working_schema = untyped_schema(schema, domain)
        minimal_set = minimal.critical_tuples(query, working_schema, domain)
        pruned_set = pruned.critical_tuples(query, working_schema, domain)
        assert minimal_set == pruned_set
        report.add_row(query.name, len(pruned_set), "yes")
