"""Fleet throughput, fleet-wide coalescing and saturation behaviour.

Three acceptance gates over the pre-forked multi-worker fleet
(:class:`~repro.service.fleet.FleetServer`), all end-to-end over real
TCP against real worker processes:

* **Fleet throughput** — the same seeded Table 1 workload that gates
  the single-process daemon (``BENCH_service.json``) is replayed
  against a fleet sized to the machine, and against a fresh
  single-process baseline in the same run.  The required speedup is
  hardware-adaptive: ``min(5.0, max(0.5, 0.6 * cpu_count))`` — the full
  5x target engages on many-core machines where the fleet's per-core
  scaling can express itself, while a 1-core container (where N worker
  processes time-share one core and a fleet *cannot* beat one process
  by parallelism) still gates that routing + fleet coalescing keep at
  least half the single-process throughput.  Both the measured speedup
  and the machine-derived requirement are embedded in the emitted JSON,
  so ``check_trajectory.py`` re-derives the gate per machine.

* **Fleet-wide coalescing burst** — ``BURST_SIZE`` byte-identical
  requests on distinct connections must cost exactly **one** worker
  computation across the whole fleet; the aggregated ``stats`` totals
  are the witness.

* **Saturation / load-shedding curve** — offered load is stepped far
  past a deliberately tiny fleet's capacity; overload must surface as
  structured ``overloaded`` responses (bounded per-shard queues), not
  as hard errors or unbounded latency.

Results land in ``BENCH_service_fleet.json`` next to the other
``BENCH_*.json`` trajectory packs.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.service import AsyncAuditServiceClient, FleetThread, ServerThread
from repro.workload import WorkloadSpec, generate_workload, replay_workload, table1_templates

#: Identical requests fired concurrently in the fleet-coalescing burst.
BURST_SIZE = 32

#: Required duplicate hits for the burst (fleet-wide cost of one).
MIN_DUPLICATE_HITS = BURST_SIZE - 1

#: The seeded workload shared with ``bench_service_throughput`` /
#: ``BENCH_service.json`` — same seed, size and duplicate mix, so the
#: speedup compares like with like.
WORKLOAD_REQUESTS = 300
CONCURRENCY = 12

#: Saturation curve: offered concurrency levels against a tiny fleet.
SATURATION_LEVELS = (4, 16, 48)

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_service_fleet.json")


def _fleet_workers() -> int:
    """Fleet size for the throughput gate: one worker per core, 2..8."""
    return max(2, min(8, os.cpu_count() or 2))


def _required_speedup() -> float:
    """The hardware-adaptive throughput gate (see module docstring)."""
    return round(min(5.0, max(0.5, 0.6 * (os.cpu_count() or 1))), 2)


def _merge_results(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_service_fleet.json``."""
    document = {"benchmark": "service_fleet"}
    if JSON_PATH.exists():
        document.update(json.loads(JSON_PATH.read_text()))
    document[section] = payload
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")


def _fire_burst(address, document: dict) -> list:
    """Send BURST_SIZE copies of one request concurrently (own connections)."""

    async def _run():
        clients = [AsyncAuditServiceClient(*address) for _ in range(BURST_SIZE)]
        try:
            return await asyncio.gather(
                *(client.request(**document) for client in clients)
            )
        finally:
            for client in clients:
                await client.close()

    return asyncio.run(_run())


def test_fleet_throughput_vs_single_process(experiment_report):
    report = experiment_report(
        "Audit fleet — Table 1 workload: fleet vs single process",
        ("tier", "workers", "rps", "ok", "p95 (ms)", "router hits", "speedup", "required"),
    )
    spec = WorkloadSpec(
        seed=42, requests=WORKLOAD_REQUESTS, duplicate_fraction=0.3, random_fraction=0.0
    )
    requests = generate_workload(spec)
    workers = _fleet_workers()

    with ServerThread(workers=4) as server:
        baseline = replay_workload(requests, *server.address, concurrency=CONCURRENCY)
    with FleetThread(workers=workers, worker_threads=2) as fleet:
        summary = replay_workload(requests, *fleet.address, concurrency=CONCURRENCY)

    base_rps = baseline["requests_per_second"]
    fleet_rps = summary["requests_per_second"]
    speedup = round(fleet_rps / base_rps, 3) if base_rps else 0.0
    required = _required_speedup()
    router_hits = summary["fleet_coalesced"] + summary["fleet_cached"]
    report.add_row(
        "single", 1, f"{base_rps:.0f}", baseline["ok"],
        f"{baseline['latency_ms']['p95']:.2f}", "-", "1.00", "-",
    )
    report.add_row(
        "fleet", workers, f"{fleet_rps:.0f}", summary["ok"],
        f"{summary['latency_ms']['p95']:.2f}", router_hits,
        f"{speedup:.2f}", f"≥ {required:.2f}",
    )
    report.add_note(
        f"required speedup = min(5.0, max(0.5, 0.6 × {os.cpu_count()} cpus)); "
        "the full 5x gate engages on ≥ 9-core machines."
    )
    _merge_results(
        "fleet_throughput",
        {
            "workload": {
                "seed": spec.seed,
                "requests": spec.requests,
                "duplicate_fraction": spec.duplicate_fraction,
                "source": "table1-3-variable",
            },
            "cpu_count": os.cpu_count(),
            "fleet_workers": workers,
            "concurrency": CONCURRENCY,
            "single_process_requests_per_second": base_rps,
            "requests_per_second": fleet_rps,
            "ok": summary["ok"],
            "errors": summary["errors"],
            "overloaded": summary["overloaded"],
            "latency_ms": summary["latency_ms"],
            "router_coalesced": summary["fleet_coalesced"],
            "router_cache_hits": summary["fleet_cached"],
            "speedup": speedup,
            "required_speedup": required,
        },
    )
    assert summary["errors"] == 0, summary.get("failures")
    assert summary["ok"] == WORKLOAD_REQUESTS
    assert speedup >= required, (
        f"the fleet sustained {fleet_rps:.1f} req/s = {speedup:.2f}x of the "
        f"single process ({base_rps:.1f} req/s); required ≥ {required:.2f}x "
        f"on {os.cpu_count()} cpus"
    )


def test_fleet_burst_costs_one_computation(experiment_report):
    report = experiment_report(
        "Audit fleet — fleet-wide coalescing burst (distinct connections)",
        ("burst", "fleet computed", "coalesced", "cached", "duplicate hits", "required"),
    )
    burst_request = dict(table1_templates()[2])  # Table 1 row 1, op=audit
    assert burst_request["op"] == "audit"
    with FleetThread(workers=_fleet_workers(), worker_threads=2) as fleet:
        responses = _fire_burst(fleet.address, burst_request)

        async def _stats():
            client = AsyncAuditServiceClient(*fleet.address)
            try:
                return await client.call("stats")
            finally:
                await client.close()

        stats = asyncio.run(_stats())

    assert all(response["ok"] for response in responses)
    results = [json.dumps(response["result"], sort_keys=True) for response in responses]
    assert len(set(results)) == 1, "coalesced answers must be identical"

    audit_ops = stats["operations"]["audit"]
    duplicates = audit_ops["coalesced"] + audit_ops["cached"]
    report.add_row(
        BURST_SIZE,
        audit_ops["computed"],
        audit_ops["coalesced"],
        audit_ops["cached"],
        duplicates,
        f"≥ {MIN_DUPLICATE_HITS}",
    )
    _merge_results(
        "fleet_coalescing_burst",
        {
            "burst_size": BURST_SIZE,
            "fleet_workers": _fleet_workers(),
            "computed": audit_ops["computed"],
            "coalesced": audit_ops["coalesced"],
            "result_cache_hits": audit_ops["cached"],
            "duplicate_hits": duplicates,
            "required_duplicate_hits": MIN_DUPLICATE_HITS,
        },
    )
    assert audit_ops["computed"] == 1, (
        f"the burst cost {audit_ops['computed']} computations across the fleet "
        "(must be exactly 1)"
    )
    assert duplicates >= MIN_DUPLICATE_HITS


def test_fleet_sheds_under_saturation(experiment_report):
    report = experiment_report(
        "Audit fleet — saturation curve (tiny fleet, stepped offered load)",
        ("offered", "requests", "ok", "overloaded", "errors", "p95 (ms)"),
    )
    curve = []
    with FleetThread(
        workers=2,
        worker_threads=1,
        shard_queue_limit=4,
        connections_per_worker=2,
    ) as fleet:
        for index, level in enumerate(SATURATION_LEVELS):
            # Fresh fingerprints per level: neither the coalescer nor any
            # worker cache can absorb the offered load.
            requests = [
                {
                    "op": "decide",
                    "schema": table1_templates()[0]["schema"],
                    "secret": f"Qsat{index}x{n}(n) :- Emp(n, d, p)",
                    "views": {"bob": "V(n, d) :- Emp(n, d, p)"},
                }
                for n in range(level * 4)
            ]
            summary = replay_workload(
                requests, *fleet.address, concurrency=level
            )
            point = {
                "offered_concurrency": level,
                "requests": summary["requests"],
                "ok": summary["ok"],
                "overloaded": summary["overloaded"],
                "errors": summary["errors"],
                "p95_ms": summary["latency_ms"]["p95"],
            }
            curve.append(point)
            report.add_row(
                level,
                point["requests"],
                point["ok"],
                point["overloaded"],
                point["errors"],
                f"{point['p95_ms']:.2f}",
            )
    report.add_note(
        "2 workers × 1 thread, shard queue limit 4: overload surfaces as "
        "structured 'overloaded' responses, never as hard errors."
    )
    peak = curve[-1]
    _merge_results(
        "saturation",
        {
            "fleet": {"workers": 2, "worker_threads": 1, "shard_queue_limit": 4},
            "curve": curve,
            "shed_responses_at_peak": peak["overloaded"],
            "required_shed_responses_at_peak": 1,
        },
    )
    assert all(point["errors"] == 0 for point in curve), curve
    assert all(
        point["ok"] + point["overloaded"] == point["requests"] for point in curve
    ), "every request must be answered: served or structurally shed"
    assert any(point["ok"] > 0 for point in curve)
    assert peak["overloaded"] >= 1, (
        f"offered load {peak['offered_concurrency']} never saturated the "
        f"limit-4 shards: {peak}"
    )
