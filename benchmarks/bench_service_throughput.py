"""Service throughput and coalescing: the audit daemon under load.

Two acceptance gates (wired into CI), both end-to-end over real TCP:

* **Coalescing burst** — ``BURST_SIZE`` byte-identical ``audit``
  requests fired concurrently must complete with at least
  ``BURST_SIZE − 1`` duplicate hits (coalesced in-flight or served from
  the result cache) reported by the server's metrics: the burst costs
  one computation no matter how it interleaves.

* **Mixed-workload throughput** — a seeded
  :func:`~repro.workload.generate_workload` mix over the paper's
  3-variable Table 1 query-view pairs (decide / quick / audit /
  collusion / leakage / verify / with_knowledge / plan, 30% duplicates)
  replayed over ``CONCURRENCY`` connections must sustain at least
  ``MIN_THROUGHPUT`` requests/sec with zero hard errors.

The run writes ``BENCH_service.json`` (requests/sec, p50/p95 latency,
coalescing hit rate) so the serving-tier trajectory is machine-readable
across PRs, mirroring ``BENCH_exact_kernel.json``.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.service import AsyncAuditServiceClient, ServerThread
from repro.workload import WorkloadSpec, generate_workload, replay_workload, table1_templates

#: Identical requests fired concurrently in the coalescing burst.
BURST_SIZE = 32

#: Required duplicate hits for the burst (the acceptance criterion).
MIN_DUPLICATE_HITS = BURST_SIZE - 1

#: Required sustained mixed-workload throughput, requests per second.
MIN_THROUGHPUT = 100.0

#: Mixed-workload size and replay fan-out.
WORKLOAD_REQUESTS = 300
CONCURRENCY = 12

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_service.json")


def _merge_results(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_service.json``."""
    document = {"benchmark": "service_throughput"}
    if JSON_PATH.exists():
        document.update(json.loads(JSON_PATH.read_text()))
    document[section] = payload
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")


def _fire_burst(address, document: dict) -> list:
    """Send BURST_SIZE copies of one request concurrently (own connections)."""

    async def _run():
        clients = [AsyncAuditServiceClient(*address) for _ in range(BURST_SIZE)]
        try:
            return await asyncio.gather(
                *(client.request(**document) for client in clients)
            )
        finally:
            for client in clients:
                await client.close()

    return asyncio.run(_run())


def test_identical_burst_coalesces(experiment_report):
    report = experiment_report(
        "Audit service — coalescing burst (N identical audit requests)",
        ("burst", "computed", "coalesced", "cached", "duplicate hits", "required"),
    )
    burst_request = dict(table1_templates()[2])  # Table 1 row 1, op=audit
    assert burst_request["op"] == "audit"
    with ServerThread(workers=4) as server:
        responses = _fire_burst(server.address, burst_request)
        snapshot = server.server.metrics.snapshot()

    assert all(response["ok"] for response in responses)
    results = [json.dumps(response["result"], sort_keys=True) for response in responses]
    assert len(set(results)) == 1, "coalesced answers must be identical"

    audit_ops = snapshot["operations"]["audit"]
    duplicates = audit_ops["coalesced"] + audit_ops["cached"]
    report.add_row(
        BURST_SIZE,
        audit_ops["computed"],
        audit_ops["coalesced"],
        audit_ops["cached"],
        duplicates,
        f"≥ {MIN_DUPLICATE_HITS}",
    )
    _merge_results(
        "coalescing_burst",
        {
            "burst_size": BURST_SIZE,
            "computed": audit_ops["computed"],
            "coalesced": audit_ops["coalesced"],
            "result_cache_hits": audit_ops["cached"],
            "duplicate_hits": duplicates,
            "required_duplicate_hits": MIN_DUPLICATE_HITS,
            "coalescing_hit_rate": snapshot["totals"]["coalescing_hit_rate"],
            "duplicate_hit_rate": snapshot["totals"]["duplicate_hit_rate"],
        },
    )
    assert audit_ops["computed"] == 1, "the burst must cost exactly one computation"
    assert duplicates >= MIN_DUPLICATE_HITS, (
        f"only {duplicates} of {BURST_SIZE} burst requests were coalesced/cached "
        f"(required ≥ {MIN_DUPLICATE_HITS})"
    )


def test_mixed_workload_throughput(experiment_report):
    report = experiment_report(
        "Audit service — mixed Table 1 workload over TCP",
        ("requests", "ok", "rps", "p50 (ms)", "p95 (ms)", "dup hits", "required rps"),
    )
    # random_fraction=0: the gate is defined on the 3-variable Table 1
    # workloads only (random schemas vary in cost across seeds).
    spec = WorkloadSpec(
        seed=42, requests=WORKLOAD_REQUESTS, duplicate_fraction=0.3, random_fraction=0.0
    )
    requests = generate_workload(spec)
    with ServerThread(workers=4) as server:
        summary = replay_workload(requests, *server.address, concurrency=CONCURRENCY)
        snapshot = server.server.metrics.snapshot()

    rps = summary["requests_per_second"]
    duplicates = summary["coalesced"] + summary["cached"]
    report.add_row(
        summary["requests"],
        summary["ok"],
        f"{rps:.0f}",
        f"{summary['latency_ms']['p50']:.2f}",
        f"{summary['latency_ms']['p95']:.2f}",
        duplicates,
        f"≥ {MIN_THROUGHPUT:.0f}",
    )
    _merge_results(
        "mixed_workload",
        {
            "workload": {
                "seed": spec.seed,
                "requests": spec.requests,
                "duplicate_fraction": spec.duplicate_fraction,
                "source": "table1-3-variable",
            },
            "concurrency": CONCURRENCY,
            "ok": summary["ok"],
            "errors": summary["errors"],
            "overloaded": summary["overloaded"],
            "seconds": summary["seconds"],
            "requests_per_second": rps,
            "required_requests_per_second": MIN_THROUGHPUT,
            "latency_ms": summary["latency_ms"],
            "coalesced": summary["coalesced"],
            "result_cache_hits": summary["cached"],
            "coalescing_hit_rate": snapshot["totals"]["coalescing_hit_rate"],
            "duplicate_hit_rate": snapshot["totals"]["duplicate_hit_rate"],
        },
    )
    assert summary["errors"] == 0, summary.get("failures")
    assert summary["ok"] == WORKLOAD_REQUESTS
    assert rps >= MIN_THROUGHPUT, (
        f"sustained only {rps:.1f} requests/sec on the Table 1 mixed workload "
        f"(required ≥ {MIN_THROUGHPUT:.0f})"
    )
