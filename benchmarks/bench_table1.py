"""Benchmark / reproduction of **Table 1**: the spectrum of information disclosure.

For each of the four query-view pairs over ``Emp(name, department, phone)``
the harness regenerates the two columns the paper reports — the informal
disclosure level (Total / Partial / Minute / None) and the query-view
security verdict (No / No / No / Yes) — and times the full classification
pipeline (Theorem 4.5 decision + answerability probe + leakage measurement).
"""

from __future__ import annotations

import pytest

from repro.audit import classify_disclosure
from repro.bench import employee_schema, table1_pairs
from repro.core import decide_security

SCHEMA = employee_schema(names=2, departments=2, phones=2)
ROWS = {row.row: row for row in table1_pairs()}


@pytest.mark.parametrize("row_id", sorted(ROWS))
def test_table1_row(benchmark, experiment_report, row_id):
    row = ROWS[row_id]
    report = experiment_report(
        "Table 1 — spectrum of information disclosure",
        ("row", "view(s)", "query", "disclosure (paper)", "disclosure (measured)",
         "secure (paper)", "secure (measured)"),
    )

    # The classification of row (2) enumerates a 12-tuple support exactly, so
    # a single timed round keeps the harness fast while still reporting cost.
    assessment = benchmark.pedantic(
        classify_disclosure, args=(row.secret, list(row.views), SCHEMA), rounds=1, iterations=1
    )
    decision = decide_security(row.secret, list(row.views), SCHEMA)

    report.add_row(
        row.row,
        ", ".join(v.name for v in row.views),
        row.secret.name,
        row.expected_level.value,
        assessment.level.value,
        "yes" if row.expected_secure else "no",
        "yes" if decision.secure else "no",
    )

    assert assessment.level is row.expected_level
    assert decision.secure == row.expected_secure
