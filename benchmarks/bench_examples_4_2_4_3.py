"""Reproduction of **Examples 4.2 / 4.3** and the Section 2.1 boolean example.

Example 4.2 (non-security): over ``R(X,Y)``, ``D = {a,b}``, ``P(t) = 1/2``,
the paper computes ``P[S(I) = {(a)}] = 3/16`` but
``P[S(I) = {(a)} | V(I) = {(b)}] = 1/3``.

Example 4.3 (security): for ``V(x):-R(x,b)`` and ``S(y):-R(y,a)`` both
probabilities equal ``1/4``.

Section 2.1: a boolean view can sharply raise the probability of a
boolean secret even though it rules out no possible answer — the
motivation for a probabilistic (rather than possible-answers) criterion.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, ExactEngine, q
from repro.bench import binary_schema
from repro.core import verify_security_probabilistically
from repro.probability import QueryAnswerIs, QueryTrue
from repro.relational import Domain, RelationSchema, Schema

SCHEMA = binary_schema(("a", "b"))
DICTIONARY = Dictionary.uniform(SCHEMA, Fraction(1, 2))


def test_example_4_2_non_security(benchmark, experiment_report):
    report = experiment_report(
        "Examples 4.2 / 4.3 — exact probabilities",
        ("example", "quantity", "paper", "measured"),
    )
    secret = q("S(y) :- R(x, y)")
    view = q("V(x) :- R(x, y)")
    engine = ExactEngine(DICTIONARY)
    s_event = QueryAnswerIs(secret, [("a",)])
    v_event = QueryAnswerIs(view, [("b",)])

    prior = engine.probability(s_event)
    posterior = engine.conditional_probability(s_event, v_event)
    secure = benchmark(verify_security_probabilistically, secret, view, DICTIONARY)

    report.add_row("4.2", "P[S={(a)}]", "3/16", prior)
    report.add_row("4.2", "P[S={(a)} | V={(b)}]", "1/3", posterior)
    report.add_row("4.2", "secure", "no", "yes" if secure else "no")

    assert prior == Fraction(3, 16)
    assert posterior == Fraction(1, 3)
    assert not secure


def test_example_4_3_security(benchmark, experiment_report):
    report = experiment_report(
        "Examples 4.2 / 4.3 — exact probabilities",
        ("example", "quantity", "paper", "measured"),
    )
    secret = q("S(y) :- R(y, 'a')")
    view = q("V(x) :- R(x, 'b')")
    engine = ExactEngine(DICTIONARY)
    s_event = QueryAnswerIs(secret, [("a",)])
    v_event = QueryAnswerIs(view, [("b",)])

    prior = engine.probability(s_event)
    posterior = engine.conditional_probability(s_event, v_event)
    secure = benchmark(verify_security_probabilistically, secret, view, DICTIONARY)

    report.add_row("4.3", "P[S={(a)}]", "1/4", prior)
    report.add_row("4.3", "P[S={(a)} | V={(b)}]", "1/4", posterior)
    report.add_row("4.3", "secure", "yes", "yes" if secure else "no")

    assert prior == Fraction(1, 4)
    assert posterior == Fraction(1, 4)
    assert secure


def test_section_2_1_boolean_disclosure(benchmark, experiment_report):
    report = experiment_report(
        "Section 2.1 — possible-answers criterion is too weak",
        ("quantity", "value"),
    )
    schema = Schema(
        [
            RelationSchema(
                "Employee",
                ("name", "dept", "phone"),
                {
                    "name": Domain.of("Jane", "Bob", "Ann"),
                    "dept": Domain.of("Shipping"),
                    "phone": Domain.of(1234567, 7654321, 5550000),
                },
            )
        ],
    )
    dictionary = Dictionary.uniform(schema, Fraction(1, 20))
    secret = q("S() :- Employee('Jane', 'Shipping', 1234567)")
    view = q("V() :- Employee('Jane', 'Shipping', p), Employee(n, 'Shipping', 1234567)")
    engine = ExactEngine(dictionary)

    prior = engine.probability(QueryTrue(secret))
    posterior = benchmark(
        engine.conditional_probability, QueryTrue(secret), QueryTrue(view)
    )

    report.add_row("P[S]", f"{float(prior):.4f}")
    report.add_row("P[S | V]", f"{float(posterior):.4f}")
    report.add_row("belief amplification", f"x{float(posterior / prior):.1f}")
    report.add_note(
        "both truth values of S remain possible given V, yet the probability "
        "rises sharply — exactly the disclosure the paper's criterion captures"
    )

    assert 0 < posterior < 1
    assert posterior > 5 * prior
