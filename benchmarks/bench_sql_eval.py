"""SQL evaluation backend: 50k-fact join gate and the million-fact run.

Two workloads gate the sql engine (``repro.storage`` +
``repro.cq.sql``) — the subsystem that takes evaluation beyond what an
in-memory :class:`Instance` can hold:

* **50k-fact selective join** — a constant-anchored two-atom join over
  50,000 store-resident facts.  Both engines are handed the same
  :class:`SQLiteFactStore`: the naive evaluator must materialise the
  instance in memory and then scan a full relation per subgoal; the sql
  engine compiles the plan into one indexed SQLite statement and pushes
  it down.  Must be ≥ :data:`MIN_SQL_SPEEDUP` faster (the CI acceptance
  gate).
* **Million-fact instance** — 10^6 facts streamed into a file-backed
  :class:`SQLiteFactStore`, then evaluated in place: a selective join,
  a head-seeded membership probe and a delta-seeded ``delta_changes``
  call, none of which materialise the instance in memory.  The gate is
  completion with sane answers; the times land in the JSON so the
  trajectory check can watch them.

Besides the pytest gates, the run writes ``BENCH_sql_eval.json`` so the
perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.cq import answer_contains, delta_changes, evaluate, eval_engine_scope, q
from repro.storage import SQLiteFactStore
from repro.workload import InstanceSpec, generate_facts

#: Required speedup of the sql engine over naive on the 50k join gate.
MIN_SQL_SPEEDUP = 5.0

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_sql_eval.json")

_RESULTS: dict = {}

QUERY_TEXT = "Q(z) :- R(0, y), S(y, z)"


def test_sql_join_speedup_at_50k(experiment_report):
    report = experiment_report(
        "SQL evaluation — naive scan vs. compiled SQL on 50k facts",
        ("seed", "facts", "answers", "naive (s)", "sql (s)", "speedup"),
    )
    specs = [
        InstanceSpec(seed=seed, facts=50_000, relations={"R": 2, "S": 2}, domain_size=2_000)
        for seed in (7, 11)
    ]

    # Warm both code paths on a small store so neither timed region
    # pays first-use interpreter costs; every timed sql run still
    # compiles its own fresh query object against its own store.
    warmup = SQLiteFactStore.mirror(
        generate_facts(InstanceSpec(seed=3, facts=200, relations={"R": 2, "S": 2}))
    )
    for engine in ("naive", "sql"):
        with eval_engine_scope(engine):
            evaluate(q(QUERY_TEXT), warmup)

    naive_total = sql_total = 0.0
    rows = []
    for spec in specs:
        # The facts are store-resident before either engine runs — the
        # load cost is the million-fact test's stage, not this gate's.
        store = SQLiteFactStore.mirror(generate_facts(spec))

        naive_query = q(QUERY_TEXT)
        gc.collect()  # keep a deferred collection out of the timed region
        with eval_engine_scope("naive"):
            started = time.perf_counter()
            naive_answer = evaluate(naive_query, store)
            naive_elapsed = time.perf_counter() - started

        # A fresh query object per timed run, so the timed region
        # includes plan compilation and index creation — the honest
        # cold cost of the sql path.
        sql_query = q(QUERY_TEXT)
        gc.collect()
        with eval_engine_scope("sql"):
            started = time.perf_counter()
            sql_answer = evaluate(sql_query, store)
            sql_elapsed = time.perf_counter() - started

        assert sql_answer == naive_answer
        naive_total += naive_elapsed
        sql_total += sql_elapsed
        rows.append(
            {
                "instance": f"selective-join-50k-seed{spec.seed}",
                "facts": len(store),
                "answers": len(naive_answer),
                "naive_seconds": round(naive_elapsed, 6),
                "sql_seconds": round(sql_elapsed, 6),
                "speedup": round(naive_elapsed / sql_elapsed, 2),
            }
        )
        report.add_row(
            f"seed {spec.seed}",
            len(store),
            len(naive_answer),
            f"{naive_elapsed:.4f}",
            f"{sql_elapsed:.4f}",
            f"{naive_elapsed / sql_elapsed:.1f}x",
        )

    speedup = naive_total / sql_total
    report.add_note(
        f"overall sql speedup: {speedup:.1f}x (required ≥ {MIN_SQL_SPEEDUP}x)"
    )
    _RESULTS["sql_join_50k"] = {
        "workload": "constant-anchored-two-atom-join-50k-facts",
        "required_speedup": MIN_SQL_SPEEDUP,
        "overall_speedup": round(speedup, 2),
        "instances": rows,
    }
    _write_json()
    assert speedup >= MIN_SQL_SPEEDUP, (
        f"the sql engine was only {speedup:.2f}x faster than the naive "
        f"evaluator on the 50k join workload (required ≥ {MIN_SQL_SPEEDUP}x)"
    )


def test_million_fact_workload(experiment_report, tmp_path):
    report = experiment_report(
        "SQL evaluation — million-fact file-backed store",
        ("stage", "time (s)", "result"),
    )
    spec = InstanceSpec(
        seed=42, facts=1_000_000, relations={"R": 2, "S": 2}, domain_size=10_000
    )
    probe_fact = next(iter(generate_facts(spec)))  # same seed → in the stream

    store = SQLiteFactStore(tmp_path / "million.db")
    try:
        started = time.perf_counter()
        store.load_facts(generate_facts(spec))
        load_elapsed = time.perf_counter() - started
        stored = len(store)
        report.add_row("bulk load", f"{load_elapsed:.2f}", f"{stored} facts")

        with eval_engine_scope("sql"):
            started = time.perf_counter()
            answers = evaluate(q(QUERY_TEXT), store)
            query_elapsed = time.perf_counter() - started
            report.add_row("selective join", f"{query_elapsed:.3f}", f"{len(answers)} answers")

            row = sorted(answers)[0]
            started = time.perf_counter()
            contained = answer_contains(q(QUERY_TEXT), store, row)
            contains_elapsed = time.perf_counter() - started
            report.add_row("answer_contains", f"{contains_elapsed:.3f}", str(contained))

            delta_query = q(f"Q(y) :- {probe_fact.relation}(x, y)")
            started = time.perf_counter()
            changed = delta_changes(delta_query, store, probe_fact)
            delta_elapsed = time.perf_counter() - started
            report.add_row("delta_changes", f"{delta_elapsed:.3f}", str(changed))
    finally:
        store.close()

    assert stored > 900_000  # duplicates collapse, but not by much
    assert answers and contained
    report.add_note(
        f"10^6-fact workload completed; load {load_elapsed:.1f}s, "
        f"query {query_elapsed * 1000:.0f}ms"
    )
    _RESULTS["million_facts"] = {
        "workload": "file-backed-store-1M-facts",
        "facts_offered": 1_000_000,
        "facts_stored": stored,
        "load_seconds": round(load_elapsed, 3),
        "join_seconds": round(query_elapsed, 6),
        "join_answers": len(answers),
        "answer_contains_seconds": round(contains_elapsed, 6),
        "delta_seconds": round(delta_elapsed, 6),
        "completed": True,
    }
    _write_json()


def _write_json() -> None:
    JSON_PATH.write_text(
        json.dumps({"benchmark": "sql_eval", **_RESULTS}, indent=2) + "\n"
    )
