"""Session cache ablation: legacy per-call collusion vs. cached session.

The legacy free-function path recomputes ``crit_D(S)`` once per view
inside a collusion analysis (``k`` views → ``k`` recomputations of the
secret's critical tuples); the session API computes each critical-tuple
set exactly once and serves every other request from its LRU cache.
This benchmark runs the same 8-view collusion analysis both ways,
checks the verdicts agree, and asserts the ≥3× speedup the session
redesign promises (the observed ratio is typically 4–5×).
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisSession, PublishingPlan, q
from repro.bench import employee_schema
from repro.core.collusion import analyse_collusion
from repro.core.critical import critical_tuples

#: Required speedup of the cached path (acceptance criterion).
MIN_SPEEDUP = 3.0

SECRET = "S(n, p) :- Emp(n, d, p), Emp(n, d2, p2), Emp(n3, d, p)"
VIEW_COUNT = 8


def _views():
    return [q(f"V{i}(n) :- Emp(n, D{i}, p)") for i in range(VIEW_COUNT)]


def test_session_cache_speedup_on_collusion(experiment_report):
    report = experiment_report(
        "Session cache — collusion on 8 views (legacy vs. cached)",
        ("path", "time (s)", "crit computations", "verdict"),
    )
    schema = employee_schema()
    secret = q(SECRET)
    views = _views()

    # Legacy per-call path: critical_fn=critical_tuples bypasses every
    # cache, reproducing the pre-session behaviour exactly.
    started = time.perf_counter()
    legacy = analyse_collusion(secret, views, schema, critical_fn=critical_tuples)
    legacy_elapsed = time.perf_counter() - started

    # Session path: a fresh session (cold cache) running the identical
    # analysis; the secret's crit is computed once instead of 8 times.
    session = AnalysisSession(schema)
    started = time.perf_counter()
    cached = session.collusion(secret, views)
    cached_elapsed = time.perf_counter() - started

    legacy_verdicts = [decision.secure for decision in legacy.per_view]
    cached_verdicts = [decision.secure for decision in cached.report.per_view]
    assert legacy_verdicts == cached_verdicts
    assert cached.verdict == legacy.secure_overall

    used = cached.cache_used
    # 1 secret + 8 views are computed once each; the other 7 secret
    # lookups hit the cache.
    assert used.misses == VIEW_COUNT + 1
    assert used.hits == VIEW_COUNT - 1

    speedup = legacy_elapsed / cached_elapsed
    report.add_row(
        "legacy (per-call)", f"{legacy_elapsed:.3f}", 2 * VIEW_COUNT, str(legacy.secure_overall)
    )
    report.add_row(
        "session (cached)", f"{cached_elapsed:.3f}", used.misses, str(cached.verdict)
    )
    report.add_note(f"speedup: {speedup:.2f}x (required ≥ {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"session-cached collusion was only {speedup:.2f}x faster than the "
        f"legacy per-call path (required ≥ {MIN_SPEEDUP}x)"
    )


def test_plan_audit_shares_critical_tuples_across_secrets(experiment_report):
    report = experiment_report(
        "Session cache — batch plan audit sharing",
        ("stage", "hits", "misses"),
    )
    schema = employee_schema()
    session = AnalysisSession(schema)
    plan = PublishingPlan(
        secrets={
            "hr_phones": "S1(n, p) :- Emp(n, HR, p)",
            "mgmt_names": "S2(n) :- Emp(n, Mgmt, p)",
        },
        views={f"user{i}": f"V{i}(n) :- Emp(n, D{i}, p)" for i in range(6)},
    )
    first = session.audit_plan(plan)
    second = session.audit_plan(plan)
    report.add_row("first audit (cold)", first.cache_used.hits, first.cache_used.misses)
    report.add_row("second audit (warm)", second.cache_used.hits, second.cache_used.misses)

    # 2 secrets + 6 views = 8 distinct critical-tuple sets for 12 pairs.
    assert first.cache_used.misses == 8
    assert first.cache_used.hits == 2 * 6 * 2 - 8
    # A repeated audit is answered entirely from the cache.
    assert second.cache_used.misses == 0
    assert [entry.secure for entry in second.entries] == [
        entry.secure for entry in first.entries
    ]
