"""Reproduction of the **Section 5.4** encrypted-view analysis.

Regenerates the paper's observations about attribute-wise encrypted
views: the structural query ``Q1():-R(x,y),R(y,z),x≠z`` is answerable
from the encrypted copy, ``Q2():-R(a,x)`` is not, yet *neither* is
perfectly secure because the copy reveals the relation's cardinality;
the leakage machinery still distinguishes the magnitude of the two
residual disclosures.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.bench import binary_schema
from repro.core import (
    EncryptedView,
    EncryptedViewAnswerIs,
    answerable_from_encrypted_view,
    encrypted_view_security,
)
from repro.probability import ExactEngine, QueryTrue
from repro.relational import Fact, Instance

SCHEMA = binary_schema(("a", "b", "c"))
DICTIONARY = Dictionary.uniform(SCHEMA, Fraction(1, 3))
VIEW = EncryptedView("R")

TITLE = "Section 5.4 — encrypted views"
HEADER = ("query", "answerable from Enc(R)?", "perfectly secure?", "P[Q] -> P[Q | Enc answer]")

Q1 = q("Q1() :- R(x, y), R(y, z), x != z")
Q2 = q("Q2() :- R('a', x)")

#: A concrete published instance used for the conditional-probability column.
PUBLISHED = Instance.of(Fact("R", ("a", "b")), Fact("R", ("b", "c")))


@pytest.mark.parametrize("query", [Q1, Q2], ids=["Q1-structural", "Q2-constant"])
def test_encrypted_view_disclosure(benchmark, experiment_report, query):
    report = experiment_report(TITLE, HEADER)

    answerable = benchmark.pedantic(
        answerable_from_encrypted_view, args=(query, VIEW, DICTIONARY),
        kwargs={"max_support_size": 9}, rounds=1, iterations=1,
    )
    security = encrypted_view_security(query, VIEW, SCHEMA)

    engine = ExactEngine(DICTIONARY)
    prior = engine.probability(QueryTrue(query))
    posterior = engine.conditional_probability(
        QueryTrue(query), EncryptedViewAnswerIs(VIEW, VIEW.answer(PUBLISHED))
    )

    report.add_row(
        repr(query),
        "yes" if answerable else "no",
        "yes" if security.secure else "no",
        f"{float(prior):.3f} -> {float(posterior):.3f}",
    )

    if query is Q1:
        assert answerable
        # Answerable means the conditional probability collapses to 0 or 1.
        assert posterior in (0, 1)
    else:
        assert not answerable
        assert 0 < posterior < 1
    assert not security.secure
