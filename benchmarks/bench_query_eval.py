"""Query-evaluation ablation: naive backtracking vs. compiled plans.

Two workloads gate the compiled evaluation layer (``repro.cq.plan`` +
``repro.cq.compiled``) against the surviving seed evaluator
(``repro.cq.evaluation.naive_*``):

* **Indexed join plans** — 3-atom chain joins over instances of 240
  facts.  The naive evaluator scans every fact of the relation per
  subgoal and copies the assignment dict per candidate; the compiled
  plan probes per-instance hash indexes with slot-array bindings.  Must
  be ≥ :data:`MIN_JOIN_SPEEDUP` faster (the CI acceptance gate).
* **Criticality delta ablation** — ``crit_D(Q)`` over the Definition 4.4
  instance enumeration, where every (instance, fact) pair asks
  ``Q(I) ≠ Q(I − t)``.  With delta evaluation only derivations using the
  removed fact are re-derived; the ablated configuration
  (``REPRO_EVAL_ENGINE=naive``) re-evaluates the query twice in full.
  Must be ≥ :data:`MIN_DELTA_SPEEDUP` faster, and the run also times PR
  2's pruned engine on the same secrets to show the two optimisations
  compound (pruning removes most of the work delta would otherwise
  re-derive).

Besides the pytest gates, the run writes ``BENCH_query_eval.json``
(workload, naive time, compiled time, speedup) so the perf trajectory is
machine-readable across PRs.
"""

from __future__ import annotations

import gc
import json
import os
import random
import time
from pathlib import Path

from repro.bench import employee_schema
from repro.core.criticality import create_criticality_engine
from repro.cq import EVAL_ENGINE_ENV, naive_evaluate, plan_for, q
from repro.relational import Fact, Instance

#: Required speedup of compiled evaluation on the join workload.
MIN_JOIN_SPEEDUP = 5.0

#: Required speedup of delta evaluation on the criticality workload.
MIN_DELTA_SPEEDUP = 2.0

#: Where the machine-readable results land (repo root under CI).
JSON_PATH = Path("BENCH_query_eval.json")

_RESULTS: dict = {}


def _join_workload(seed: int, per_relation: int = 80, domain_size: int = 30):
    """A 3-atom chain join over a 240-fact instance (R ⋈ S ⋈ T)."""
    rng = random.Random(seed)
    facts = []
    for relation in ("R", "S", "T"):
        for _ in range(per_relation):
            facts.append(
                Fact(relation, (rng.randrange(domain_size), rng.randrange(domain_size)))
            )
    return Instance(facts)


def _with_eval_engine(engine: str, thunk):
    previous = os.environ.get(EVAL_ENGINE_ENV)
    os.environ[EVAL_ENGINE_ENV] = engine
    try:
        return thunk()
    finally:
        if previous is None:
            os.environ.pop(EVAL_ENGINE_ENV, None)
        else:
            os.environ[EVAL_ENGINE_ENV] = previous


def test_compiled_join_evaluation_speedup(experiment_report):
    report = experiment_report(
        "Query evaluation — naive backtracking vs. compiled join plans",
        ("instance", "facts", "answers", "naive (s)", "compiled (s)", "speedup"),
    )
    query_text = "Q(x, w) :- R(x, y), S(y, z), T(z, w)"
    instances = [_join_workload(seed) for seed in (7, 11, 13)]

    # Warm both code paths on a small instance so neither timed region
    # pays first-use interpreter costs; every timed compiled run still
    # plans its own fresh query object and builds the instance indexes.
    warmup = _join_workload(3, per_relation=4)
    naive_evaluate(q(query_text), warmup)
    plan_for(q(query_text)).evaluate(warmup)

    naive_total = compiled_total = 0.0
    rows = []
    for seed, instance in zip((7, 11, 13), instances):
        naive_query = q(query_text)
        gc.collect()  # keep a deferred collection out of the timed region
        started = time.perf_counter()
        naive_answer = naive_evaluate(naive_query, instance)
        naive_elapsed = time.perf_counter() - started

        # A fresh query object per timed run, so the timed region includes
        # planning and index construction — the honest cold cost.
        compiled_query = q(query_text)
        gc.collect()
        started = time.perf_counter()
        compiled_answer = plan_for(compiled_query).evaluate(instance)
        compiled_elapsed = time.perf_counter() - started

        assert compiled_answer == naive_answer
        naive_total += naive_elapsed
        compiled_total += compiled_elapsed
        rows.append(
            {
                "instance": f"join-240-seed{seed}",
                "facts": len(instance),
                "answers": len(naive_answer),
                "naive_seconds": round(naive_elapsed, 6),
                "compiled_seconds": round(compiled_elapsed, 6),
                "speedup": round(naive_elapsed / compiled_elapsed, 2),
            }
        )
        report.add_row(
            f"seed {seed}",
            len(instance),
            len(naive_answer),
            f"{naive_elapsed:.4f}",
            f"{compiled_elapsed:.4f}",
            f"{naive_elapsed / compiled_elapsed:.1f}x",
        )

    speedup = naive_total / compiled_total
    report.add_note(
        f"overall join speedup: {speedup:.1f}x (required ≥ {MIN_JOIN_SPEEDUP}x)"
    )
    _RESULTS["join"] = {
        "workload": "three-atom-chain-join-240-facts",
        "required_speedup": MIN_JOIN_SPEEDUP,
        "overall_speedup": round(speedup, 2),
        "instances": rows,
    }
    _write_json()
    assert speedup >= MIN_JOIN_SPEEDUP, (
        f"compiled evaluation was only {speedup:.2f}x faster than the naive "
        f"evaluator on the join workload (required ≥ {MIN_JOIN_SPEEDUP}x)"
    )


def test_criticality_delta_ablation(experiment_report):
    report = experiment_report(
        "Criticality — delta evaluation vs. full re-evaluation",
        ("configuration", "time (s)", "vs. full re-evaluation"),
    )
    schema = employee_schema(names=2, departments=2, phones=3)  # 12-fact tup(D)
    secrets = [
        q("S() :- Emp(n, 'd0', p), Emp(n2, 'd0', p2), n != n2"),
        q("S(n) :- Emp(n, d, p), Emp(n2, d, p2), n != n2").boolean_specialisation(
            ("n0",)
        ),
    ]

    workers = os.environ.get("REPRO_CRITICALITY_WORKERS")
    os.environ["REPRO_CRITICALITY_WORKERS"] = "0"  # serial: deterministic timing
    try:
        def run(engine_name: str, eval_engine: str):
            def thunk():
                engine = create_criticality_engine(engine_name)
                started = time.perf_counter()
                results = [engine.critical_tuples(s, schema) for s in secrets]
                return time.perf_counter() - started, results

            return _with_eval_engine(eval_engine, thunk)

        full_elapsed, full_results = run("naive", "naive")
        delta_elapsed, delta_results = run("naive", "compiled")
        pruned_elapsed, pruned_results = run("pruned-parallel", "compiled")
    finally:
        if workers is None:
            os.environ.pop("REPRO_CRITICALITY_WORKERS", None)
        else:
            os.environ["REPRO_CRITICALITY_WORKERS"] = workers

    assert delta_results == full_results, (
        "delta evaluation changed a crit_D(Q) verdict on the Definition 4.4 engine"
    )
    assert pruned_results == full_results, (
        "the pruned engine disagrees with the Definition 4.4 enumeration"
    )

    delta_speedup = full_elapsed / delta_elapsed
    compound_speedup = full_elapsed / pruned_elapsed
    report.add_row("Definition 4.4, full re-evaluation", f"{full_elapsed:.3f}", "1.0x")
    report.add_row(
        "Definition 4.4, delta evaluation", f"{delta_elapsed:.3f}", f"{delta_speedup:.1f}x"
    )
    report.add_row(
        "pruned engine (PR 2) + delta", f"{pruned_elapsed:.4f}", f"{compound_speedup:.0f}x"
    )
    report.add_note(
        f"delta speedup {delta_speedup:.1f}x (required ≥ {MIN_DELTA_SPEEDUP}x); "
        f"compounded with pruning: {compound_speedup:.0f}x"
    )
    _RESULTS["criticality_delta"] = {
        "workload": "crit_D-definition-4.4-12-fact-tuple-space",
        "required_speedup": MIN_DELTA_SPEEDUP,
        "full_reevaluation_seconds": round(full_elapsed, 6),
        "delta_seconds": round(delta_elapsed, 6),
        "delta_speedup": round(delta_speedup, 2),
        "pruned_plus_delta_seconds": round(pruned_elapsed, 6),
        "compound_speedup": round(compound_speedup, 2),
    }
    _write_json()
    assert delta_speedup >= MIN_DELTA_SPEEDUP, (
        f"delta evaluation was only {delta_speedup:.2f}x faster than full "
        f"re-evaluation on the criticality workload (required ≥ {MIN_DELTA_SPEEDUP}x)"
    )
    assert pruned_elapsed < full_elapsed, (
        "the pruned engine with delta evaluation failed to beat the ablated stack"
    )


def _write_json() -> None:
    JSON_PATH.write_text(
        json.dumps({"benchmark": "query_eval", **_RESULTS}, indent=2) + "\n"
    )
