"""Unit tests for practical (asymptotic) security — Section 6.2."""

import math

import pytest

from repro import q
from repro.core import (
    PracticalSecurityLevel,
    asymptotic_order,
    classify_practical_security,
    empirical_mu,
)
from repro.exceptions import SecurityAnalysisError


class TestAsymptoticOrder:
    def test_single_atom_all_variables(self):
        order = asymptotic_order(q("Q() :- R(x, y)"), expected_sizes=3.0)
        assert order.exponent == 0
        assert order.coefficient == pytest.approx(3.0)
        assert order.estimate(10) <= 1.0

    def test_single_atom_with_constant(self):
        order = asymptotic_order(q("Q() :- R('a', x)"), expected_sizes=3.0)
        assert order.exponent == 1
        assert order.coefficient == pytest.approx(3.0)
        assert order.estimate(100) == pytest.approx(0.03)

    def test_fully_ground_atom(self):
        order = asymptotic_order(q("Q() :- R('a', 'b')"), expected_sizes=5.0)
        assert order.exponent == 2
        assert order.coefficient == pytest.approx(5.0)

    def test_self_join_collapses_to_loop(self):
        # R(x,y),R(y,x): the cheapest witness is the self-loop R(a,a).
        order = asymptotic_order(q("Q() :- R(x, y), R(y, x)"), expected_sizes=2.0)
        assert order.exponent == 1
        loop_patterns = [p for p in order.patterns if len(p.facts) == 1]
        assert loop_patterns

    def test_inequality_excludes_collapse(self):
        # With x != y the self-loop is forbidden, so the two-edge witness
        # dominates: weight 4, two fresh values, exponent 2.
        order = asymptotic_order(q("Q() :- R(x, y), R(y, x), x != y"), expected_sizes=2.0)
        assert order.exponent == 2

    def test_path_query(self):
        # R(x,y),R(y,z): cheapest witnesses are the self-loop (weight 2,
        # 1 fresh value) giving exponent 1.
        order = asymptotic_order(q("Q() :- R(x, y), R(y, z)"), expected_sizes=1.0)
        assert order.exponent == 1

    def test_per_relation_expected_sizes(self):
        order = asymptotic_order(
            q("Q() :- R('a', x), S('b', y)"), expected_sizes={"R": 2.0, "S": 5.0}
        )
        assert order.exponent == 2
        assert order.coefficient == pytest.approx(10.0)

    def test_rejects_non_boolean_queries(self):
        with pytest.raises(SecurityAnalysisError):
            asymptotic_order(q("Q(x) :- R(x, y)"))

    def test_rejects_order_predicates(self):
        with pytest.raises(SecurityAnalysisError):
            asymptotic_order(q("Q() :- R(x, y), x < y"))

    def test_variable_limit(self):
        query = q("Q() :- R(a1, a2), R(a3, a4), R(a5, a6)")
        with pytest.raises(SecurityAnalysisError):
            asymptotic_order(query, max_variables=3)


class TestClassification:
    def test_perfect_security(self, binary_abc_schema):
        report = classify_practical_security(
            q("S() :- R('a', 'a')"), q("V() :- R('b', 'b')"), binary_abc_schema
        )
        assert report.level is PracticalSecurityLevel.PERFECT
        assert report.limit == 0.0

    def test_practical_security(self, binary_abc_schema):
        # S asserts a specific tuple; V only reveals the existence of some
        # tuple in row 'a'.  Perfect security fails, but the conditional
        # probability vanishes as the domain grows.
        report = classify_practical_security(
            q("S() :- R('a', 'b')"), q("V() :- R('a', x)"), binary_abc_schema,
            expected_sizes=2.0,
        )
        assert report.level is PracticalSecurityLevel.PRACTICAL_SECURITY
        assert report.limit == 0.0
        assert report.joint_order.exponent > report.view_order.exponent

    def test_practical_disclosure(self, binary_abc_schema):
        # The view *is* the secret: the conditional probability tends to 1.
        report = classify_practical_security(
            q("S() :- R('a', 'b')"), q("V() :- R('a', 'b')"), binary_abc_schema,
            expected_sizes=2.0,
        )
        assert report.level is PracticalSecurityLevel.PRACTICAL_DISCLOSURE
        assert report.limit == pytest.approx(1.0)

    def test_rejects_non_boolean(self, binary_abc_schema):
        with pytest.raises(SecurityAnalysisError):
            classify_practical_security(
                q("S(x) :- R(x, y)"), q("V() :- R('a', x)"), binary_abc_schema
            )


class TestEmpiricalValidation:
    def test_empirical_matches_constant_regime(self):
        query = q("Q() :- R(x, y)")
        mu = empirical_mu(query, domain_size=50, expected_sizes=2.0, samples=3000, seed=5)
        assert mu == pytest.approx(1 - math.exp(-2.0), abs=0.05)

    def test_empirical_matches_decaying_regime(self):
        query = q("Q() :- R('a', x)")
        mu_small = empirical_mu(query, domain_size=20, expected_sizes=2.0, samples=4000, seed=5)
        mu_large = empirical_mu(query, domain_size=80, expected_sizes=2.0, samples=4000, seed=5)
        # μ_n ≈ 2/n: quadrupling the domain should shrink μ by roughly 4.
        assert mu_small > mu_large
        assert mu_small == pytest.approx(2 / 20, rel=0.5)
        assert mu_large == pytest.approx(2 / 80, rel=0.6)

    def test_rejects_non_boolean(self):
        with pytest.raises(SecurityAnalysisError):
            empirical_mu(q("Q(x) :- R(x, y)"), domain_size=10)

    def test_domain_must_cover_constants(self):
        with pytest.raises(SecurityAnalysisError):
            empirical_mu(q("Q() :- R('a', 'b', 'c')"), domain_size=2)
