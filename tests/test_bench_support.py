"""Unit tests for the benchmark support package (schemas and workloads)."""

import random

import pytest

from repro.audit import DisclosureLevel
from repro.bench import (
    WorkloadConfig,
    binary_schema,
    employee_schema,
    manufacturing_schema,
    patient_schema,
    random_query,
    random_query_view_pair,
    random_schema,
    scaling_workload,
    table1_pairs,
)
from repro.relational import tuple_space_size


class TestPaperSchemas:
    def test_employee_schema_shape(self):
        schema = employee_schema(names=3, departments=2, phones=4)
        relation = schema.relation("Emp")
        assert relation.arity == 3
        assert tuple_space_size(schema) == 3 * 2 * 4

    def test_binary_schema(self):
        schema = binary_schema(("a", "b"))
        assert tuple_space_size(schema) == 4

    def test_patient_schema(self):
        schema = patient_schema(names=4, diseases=3)
        assert tuple_space_size(schema) == 12

    def test_manufacturing_schema_relations(self):
        schema = manufacturing_schema()
        assert {r.name for r in schema} == {"Part", "Product", "Labor", "Cost"}

    def test_table1_pairs_cover_the_spectrum(self):
        rows = table1_pairs()
        assert len(rows) == 4
        assert [row.expected_level for row in rows] == [
            DisclosureLevel.TOTAL,
            DisclosureLevel.PARTIAL,
            DisclosureLevel.MINUTE,
            DisclosureLevel.NONE,
        ]
        assert [row.expected_secure for row in rows] == [False, False, False, True]
        # Query names follow the paper's numbering.
        assert rows[0].secret.name == "S1"
        assert rows[3].views[0].name == "V4"


class TestWorkloads:
    def test_random_schema_is_deterministic(self):
        config = WorkloadConfig(relations=3, domain_size=4)
        first = random_schema(config, random.Random(1))
        second = random_schema(config, random.Random(1))
        assert [r.name for r in first] == [r.name for r in second]
        assert [r.arity for r in first] == [r.arity for r in second]

    def test_random_query_is_well_formed(self):
        config = WorkloadConfig()
        rng = random.Random(3)
        schema = random_schema(config, rng)
        for _ in range(20):
            query = random_query(schema, config, rng)
            assert query.body
            for atom in query.body:
                assert atom.relation in {r.name for r in schema}
            for head_var in query.head_variables:
                assert head_var in query.variables

    def test_boolean_flag(self):
        config = WorkloadConfig()
        rng = random.Random(5)
        schema = random_schema(config, rng)
        query = random_query(schema, config, rng, boolean=True)
        assert query.is_boolean

    def test_random_pair_determinism(self):
        config = WorkloadConfig()
        first = random_query_view_pair(config, seed=11)
        second = random_query_view_pair(config, seed=11)
        assert repr(first[1]) == repr(second[1])
        assert repr(first[2]) == repr(second[2])

    def test_scaling_workload_shape(self):
        workload = scaling_workload([2, 3], pairs_per_size=2)
        assert len(workload) == 4
        sizes = [entry[0] for entry in workload]
        assert sizes == [2, 2, 3, 3]
        for _, schema, secret, view in workload:
            assert secret.name == "S"
            assert view.name == "V"
            assert len(schema.domain) in (2, 3)
