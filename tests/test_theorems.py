"""Integration tests validating the paper's theorems on small random inputs.

These tests cross-check the *logical* characterisation (Theorem 4.5) and
its consequences (Theorem 4.8, the FKG-type inequality, Proposition 4.9)
against the *probabilistic* definition computed by brute force, on a
deterministic battery of small random query/view pairs.
"""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.bench import WorkloadConfig, random_query_view_pair
from repro.core import (
    critical_tuples,
    decide_security,
    required_domain_size,
    verify_security_probabilistically,
)
from repro.cq import conjoin
from repro.probability import ExactEngine, QueryTrue, query_polynomial
from repro.relational import Domain, RelationSchema, Schema, tuple_space


def _small_pairs(count: int, seed_base: int = 100):
    """Deterministic battery of small (schema, secret, view) triples."""
    config = WorkloadConfig(
        relations=1,
        max_arity=2,
        domain_size=2,
        max_subgoals=2,
        max_variables=2,
        constant_probability=0.4,
    )
    return [random_query_view_pair(config, seed=seed_base + i) for i in range(count)]


class TestTheorem45:
    """crit-disjointness ⟺ security for every distribution (Theorem 4.5)."""

    @pytest.mark.parametrize("seed_offset", range(12))
    def test_logical_and_probabilistic_decisions_agree(self, seed_offset):
        # Theorem 4.5 is stated for a fixed domain D: security for every
        # distribution over D iff the critical tuples over D are disjoint.
        schema, secret, view = _small_pairs(1, seed_base=200 + seed_offset)[0]
        logical = not (
            critical_tuples(secret, schema) & critical_tuples(view, schema)
        )

        agreement_dictionaries = [
            Dictionary.uniform(schema, Fraction(1, 2)),
            Dictionary.uniform(schema, Fraction(1, 3)),
            Dictionary.uniform(schema, Fraction(3, 4)),
        ]
        probabilistic = all(
            verify_security_probabilistically(secret, view, dictionary)
            for dictionary in agreement_dictionaries
        )
        if logical:
            # Secure for every distribution, in particular these three.
            assert probabilistic
        else:
            # Some distribution must break independence; the uniform
            # non-trivial ones do by Theorem 4.8.
            assert not probabilistic

    def test_security_for_one_view_at_a_time_implies_joint_security(self):
        # Theorem 4.5's collusion corollary.
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        secret = q("S() :- R('a', 'a')")
        views = [q("V1() :- R('a', 'b')"), q("V2() :- R('b', 'b')")]
        for view in views:
            assert decide_security(secret, view, schema, domain=schema.domain).secure
        assert decide_security(secret, views, schema, domain=schema.domain).secure
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        assert verify_security_probabilistically(secret, views, dictionary)


class TestTheorem48:
    """Security under one non-trivial distribution implies all (Theorem 4.8)."""

    @pytest.mark.parametrize("seed_offset", range(10))
    def test_one_distribution_decides_all(self, seed_offset):
        schema, secret, view = _small_pairs(1, seed_base=400 + seed_offset)[0]
        reference = Dictionary.uniform(schema, Fraction(1, 2))
        others = [
            Dictionary.uniform(schema, Fraction(1, 5)),
            Dictionary.uniform(schema, Fraction(9, 10)),
        ]
        secure_under_reference = verify_security_probabilistically(secret, view, reference)
        for dictionary in others:
            assert (
                verify_security_probabilistically(secret, view, dictionary)
                == secure_under_reference
            )

    def test_trivial_distributions_are_excluded(self):
        # With P(t) = 1 everything is secure, which says nothing about
        # non-trivial distributions — the hypothesis of Theorem 4.8.
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        assert verify_security_probabilistically(secret, view, Dictionary.uniform(schema, 1))
        assert not verify_security_probabilistically(
            secret, view, Dictionary.uniform(schema, Fraction(1, 2))
        )


class TestFKGInequality:
    """P[V ∧ S] ≥ P[V]·P[S] for monotone boolean queries (Section 2.4)."""

    @pytest.mark.parametrize("seed_offset", range(10))
    def test_positive_correlation_of_monotone_queries(self, seed_offset):
        config = WorkloadConfig(
            relations=1, max_arity=2, domain_size=2, max_subgoals=2, max_variables=2
        )
        import random

        rng = random.Random(800 + seed_offset)
        from repro.bench import random_query, random_schema

        schema = random_schema(config, rng)
        secret = random_query(schema, config, rng, name="S", boolean=True)
        view = random_query(schema, config, rng, name="V", boolean=True)
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        engine = ExactEngine(dictionary)
        joint = engine.joint_probability([QueryTrue(secret), QueryTrue(view)])
        product = engine.probability(QueryTrue(secret)) * engine.probability(QueryTrue(view))
        assert joint >= product

    def test_equality_iff_disjoint_critical_tuples(self):
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        engine = ExactEngine(dictionary)
        secure_pair = (q("S() :- R('a', 'a')"), q("V() :- R('b', 'b')"))
        insecure_pair = (q("S() :- R('a', x)"), q("V() :- R(x, 'a')"))
        for secret, view in (secure_pair, insecure_pair):
            joint = engine.joint_probability([QueryTrue(secret), QueryTrue(view)])
            product = engine.probability(QueryTrue(secret)) * engine.probability(
                QueryTrue(view)
            )
            disjoint = not (
                critical_tuples(secret, schema) & critical_tuples(view, schema)
            )
            assert (joint == product) == disjoint


class TestProposition49:
    """Domain-independence: verdicts agree across sufficiently large domains."""

    @pytest.mark.parametrize("seed_offset", range(8))
    def test_verdict_stable_across_domain_sizes(self, seed_offset):
        config = WorkloadConfig(
            relations=1, max_arity=2, domain_size=2, max_subgoals=2, max_variables=2
        )
        schema, secret, view = random_query_view_pair(config, seed=900 + seed_offset)
        minimum = required_domain_size([secret, view])
        base_values = [f"c{i}" for i in range(max(minimum, 2))]
        small_domain = Domain(base_values)
        large_domain = Domain(base_values + ["extra1", "extra2"])
        small = decide_security(secret, view, schema, domain=small_domain).secure
        large = decide_security(secret, view, schema, domain=large_domain).secure
        assert small == large


class TestProposition413Properties:
    """Spot-checks of the polynomial properties used in the proofs."""

    def test_shannon_expansion(self):
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        facts = tuple_space(schema)
        query = q("Q() :- R('a', x), R(x, x)")
        poly = query_polynomial(query, facts)
        target = facts[0]
        # Setting x_t to 0/1 must equal the polynomial of Q with t fixed
        # false/true — verified numerically at a probability assignment.
        assignment = {fact: Fraction(1, 3) for fact in facts}
        del assignment[target]
        low = poly.substitute(target, 0).evaluate(assignment)
        high = poly.substitute(target, 1).evaluate(assignment)
        full = poly.evaluate({**assignment, target: Fraction(1, 3)})
        assert full == Fraction(2, 3) * low + Fraction(1, 3) * high

    def test_product_rule_requires_disjoint_critical_tuples(self):
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        facts = tuple_space(schema)
        left = q("A() :- R('a', x)")
        right = q("B() :- R(x, 'b')")  # shares the tuple R(a, b) with `left`
        joint = query_polynomial(conjoin(left, right), facts)
        f_left = query_polynomial(left, facts)
        f_right = query_polynomial(right, facts)
        # The factorisation fails exactly because crit sets overlap.
        product_value = f_left.evaluate(
            {f: Fraction(1, 2) for f in facts}
        ) * f_right.evaluate({f: Fraction(1, 2) for f in facts})
        joint_value = joint.evaluate({f: Fraction(1, 2) for f in facts})
        assert joint_value != product_value
