"""Unit tests for the audit layer: classification, auditor and reports."""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.audit import (
    AuditFinding,
    AuditReport,
    DisclosureLevel,
    SecurityAuditor,
    classify_disclosure,
    render_table,
)
from repro.exceptions import SecurityAnalysisError


class TestClassification:
    def test_secure_pair_is_none(self, emp_schema):
        assessment = classify_disclosure(
            q("S(n) :- Emp(n, HR, p)"), q("V(n) :- Emp(n, Mgmt, p)"), emp_schema
        )
        assert assessment.level is DisclosureLevel.NONE
        assert assessment.secure
        assert "secure" in assessment.summary()

    def test_answerable_pair_is_total(self, emp_schema):
        assessment = classify_disclosure(
            q("S(d) :- Emp(n, d, p)"), q("V(n, d) :- Emp(n, d, p)"), emp_schema
        )
        assert assessment.level is DisclosureLevel.TOTAL
        assert assessment.answerable
        assert "answerable" in assessment.summary()

    def test_partial_vs_minute(self, emp_schema):
        partial = classify_disclosure(
            q("S(n, p) :- Emp(n, d, p)"),
            [q("V(n, d) :- Emp(n, d, p)"), q("W(d, p) :- Emp(n, d, p)")],
            emp_schema,
        )
        minute = classify_disclosure(
            q("S(p) :- Emp(n, d, p)"), q("V(n) :- Emp(n, d, p)"), emp_schema
        )
        assert partial.level is DisclosureLevel.PARTIAL
        assert minute.level is DisclosureLevel.MINUTE
        assert partial.leakage.leakage > minute.leakage.leakage

    def test_explicit_dictionary_is_used(self, emp_schema):
        dictionary = Dictionary.uniform(emp_schema, Fraction(1, 2))
        assessment = classify_disclosure(
            q("S(p) :- Emp(n, d, p)"), q("V(n) :- Emp(n, d, p)"), emp_schema,
            dictionary=dictionary,
        )
        assert assessment.level is DisclosureLevel.MINUTE

    def test_threshold_controls_grading(self, emp_schema):
        strict = classify_disclosure(
            q("S(p) :- Emp(n, d, p)"), q("V(n) :- Emp(n, d, p)"), emp_schema,
            minute_threshold=0.0,
        )
        assert strict.level is DisclosureLevel.PARTIAL

    def test_requires_views(self, emp_schema):
        with pytest.raises(SecurityAnalysisError):
            classify_disclosure(q("S(n) :- Emp(n, d, p)"), [], emp_schema)


class TestSecurityAuditor:
    def test_decide_and_quick_check_accept_strings(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        decision = auditor.decide("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")
        assert decision.secure
        quick = auditor.quick_check("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")
        assert quick.certainly_secure

    def test_audit_produces_report(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        report = auditor.audit(
            "S(n, p) :- Emp(n, d, p)",
            {"bob": "V(n, d) :- Emp(n, d, p)", "carol": "W(d, p) :- Emp(n, d, p)"},
        )
        assert isinstance(report, AuditReport)
        assert not report.all_secure
        assert len(report.violations) == 1
        rendered = report.render()
        assert "partial" in rendered
        assert "bob" in rendered  # collusion section names recipients

    def test_audit_many(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        report = auditor.audit_many(
            ["S1(d) :- Emp(n, d, p)", "S2(n, p) :- Emp(n, d, p)"],
            ["V(n, d) :- Emp(n, d, p)"],
        )
        assert len(report.findings) == 2
        levels = {f.secret_name: f.level for f in report.findings}
        # The department list is answerable from the (name, department)
        # projection; the name–phone association is only partially disclosed.
        assert levels["S1"] is DisclosureLevel.TOTAL
        assert levels["S2"] is DisclosureLevel.PARTIAL

    def test_measure_leakage_requires_dictionary(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        with pytest.raises(SecurityAnalysisError):
            auditor.measure_leakage("S(n, p) :- Emp(n, d, p)", "V(n, d) :- Emp(n, d, p)")
        with_dictionary = SecurityAuditor(
            emp_schema, dictionary=Dictionary.uniform(emp_schema, Fraction(1, 4))
        )
        result = with_dictionary.measure_leakage(
            "S(n, p) :- Emp(n, d, p)", "V(n, d) :- Emp(n, d, p)"
        )
        assert result.leakage > 0

    def test_safe_publishing_plan(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        safe = auditor.safe_publishing_plan(
            "S(n, p) :- Emp(n, HR, p)",
            ["V1(n, d) :- Emp(n, d, p)", "V2(n) :- Emp(n, Mgmt, p)"],
        )
        assert [v.name for v in safe] == ["V2"]

    def test_decide_with_knowledge_delegates(self, emp_schema):
        from repro.core import CardinalityConstraintKnowledge

        auditor = SecurityAuditor(emp_schema)
        decision = auditor.decide_with_knowledge(
            "S(n) :- Emp(n, HR, p)",
            "V(n) :- Emp(n, Mgmt, p)",
            CardinalityConstraintKnowledge("exactly", 3),
        )
        assert decision.secure is False

    def test_audit_requires_views(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        with pytest.raises(SecurityAnalysisError):
            auditor.audit("S(n) :- Emp(n, HR, p)", [])


class TestReportRendering:
    def test_render_table_alignment(self):
        table = render_table(("a", "column"), [("x", "1"), ("longer", "2")])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_finding_row_contents(self, emp_schema):
        auditor = SecurityAuditor(emp_schema)
        report = auditor.audit("S4(n) :- Emp(n, HR, p)", ["V4(n) :- Emp(n, Mgmt, p)"])
        finding = report.findings[0]
        row = finding.row()
        assert row[0] == "S4"
        assert row[2] == "none"
        assert row[3] == "yes"
        assert report.all_secure
