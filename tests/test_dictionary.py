"""Unit tests for dictionaries (tuple-independent distributions)."""

from fractions import Fraction

import pytest

from repro import Dictionary
from repro.exceptions import ProbabilityError
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))


class TestConstruction:
    def test_uniform_probability(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        assert dictionary.probability_of(Fact("R", ("a", "b"))) == Fraction(1, 3)

    def test_float_probabilities_are_converted_exactly_enough(self, schema):
        dictionary = Dictionary.uniform(schema, 0.5)
        assert dictionary.probability_of(Fact("R", ("a", "a"))) == Fraction(1, 2)

    def test_out_of_range_probability_rejected(self, schema):
        with pytest.raises(ProbabilityError):
            Dictionary.uniform(schema, Fraction(3, 2))
        with pytest.raises(ProbabilityError):
            Dictionary.uniform(schema, -0.1)

    def test_explicit_probabilities_override_default(self, schema):
        fact = Fact("R", ("a", "a"))
        dictionary = Dictionary(schema, {fact: Fraction(1, 4)}, default=Fraction(1, 2))
        assert dictionary.probability_of(fact) == Fraction(1, 4)
        assert dictionary.probability_of(Fact("R", ("b", "b"))) == Fraction(1, 2)

    def test_with_expected_size(self, schema):
        dictionary = Dictionary.with_expected_size(schema, 2)
        assert dictionary.expected_instance_size() == 2
        assert dictionary.probability_of(Fact("R", ("a", "a"))) == Fraction(2, 4)

    def test_expected_size_larger_than_space_rejected(self, schema):
        with pytest.raises(ProbabilityError):
            Dictionary.with_expected_size(schema, 5)


class TestProperties:
    def test_tuple_space_and_expected_size(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 2))
        assert len(dictionary.tuple_space()) == 4
        assert dictionary.expected_instance_size() == 2

    def test_non_trivial_detection(self, schema):
        assert Dictionary.uniform(schema, Fraction(1, 2)).is_non_trivial()
        assert not Dictionary.uniform(schema, 0).is_non_trivial()
        assert not Dictionary.uniform(schema, 1).is_non_trivial()

    def test_with_probability_returns_new_dictionary(self, schema):
        base = Dictionary.uniform(schema, Fraction(1, 2))
        fact = Fact("R", ("a", "b"))
        updated = base.with_probability(fact, Fraction(1, 8))
        assert base.probability_of(fact) == Fraction(1, 2)
        assert updated.probability_of(fact) == Fraction(1, 8)

    def test_with_domain(self, schema):
        base = Dictionary.uniform(schema, Fraction(1, 2))
        shrunk = base.with_domain(Domain.of("a"))
        assert len(shrunk.tuple_space()) == 1


class TestInstanceProbability:
    def test_equation_1_small_case(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 2))
        instance = Instance.of(Fact("R", ("a", "a")))
        # One tuple present, three absent: (1/2)^4.
        assert dictionary.instance_probability(instance) == Fraction(1, 16)

    def test_instance_probabilities_sum_to_one(self, schema):
        from repro.relational import enumerate_instances

        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        total = sum(
            dictionary.instance_probability(instance)
            for instance in enumerate_instances(schema)
        )
        assert total == 1

    def test_restricted_product(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 2))
        fact = Fact("R", ("a", "a"))
        instance = Instance.of(fact)
        assert dictionary.instance_probability(instance, over_facts=[fact]) == Fraction(1, 2)

    def test_zero_probability_short_circuit(self, schema):
        fact = Fact("R", ("a", "a"))
        dictionary = Dictionary(schema, {fact: 0}, default=Fraction(1, 2))
        instance = Instance.of(fact)
        assert dictionary.instance_probability(instance) == 0
