"""Unit tests for conjunctive-query evaluation."""

import pytest

from repro.cq import evaluate, evaluate_boolean, possible_answers, q, satisfying_assignments
from repro.cq.evaluation import answer_tuple
from repro.cq.terms import Variable
from repro.relational import Fact, Instance


@pytest.fixture
def employee_instance() -> Instance:
    return Instance.of(
        Fact("Emp", ("ann", "hr", 100)),
        Fact("Emp", ("bob", "hr", 200)),
        Fact("Emp", ("cat", "it", 300)),
    )


class TestEvaluation:
    def test_projection_query(self, employee_instance):
        answers = evaluate(q("V(n, d) :- Emp(n, d, p)"), employee_instance)
        assert answers == frozenset({("ann", "hr"), ("bob", "hr"), ("cat", "it")})

    def test_selection_with_constant(self, employee_instance):
        answers = evaluate(q("V(n) :- Emp(n, 'hr', p)"), employee_instance)
        assert answers == frozenset({("ann",), ("bob",)})

    def test_join_via_shared_variable(self, employee_instance):
        # Pairs of employees in the same department.
        answers = evaluate(q("Q(a, b) :- Emp(a, d, p1), Emp(b, d, p2)"), employee_instance)
        assert ("ann", "bob") in answers
        assert ("ann", "cat") not in answers

    def test_comparison_filters_assignments(self, employee_instance):
        answers = evaluate(q("Q(n) :- Emp(n, d, p), p > 150"), employee_instance)
        assert answers == frozenset({("bob",), ("cat",)})

    def test_inequality_join(self, employee_instance):
        answers = evaluate(
            q("Q(a, b) :- Emp(a, d, p1), Emp(b, d, p2), a != b"), employee_instance
        )
        assert answers == frozenset({("ann", "bob"), ("bob", "ann")})

    def test_boolean_query_true_false(self, employee_instance):
        assert evaluate_boolean(q("Q() :- Emp(n, 'it', p)"), employee_instance)
        assert not evaluate_boolean(q("Q() :- Emp(n, 'sales', p)"), employee_instance)

    def test_boolean_answer_sets(self, employee_instance):
        assert evaluate(q("Q() :- Emp(n, 'it', p)"), employee_instance) == frozenset({()})
        assert evaluate(q("Q() :- Emp(n, 'sales', p)"), employee_instance) == frozenset()

    def test_empty_instance(self):
        assert evaluate(q("Q(x) :- R(x)"), Instance.empty()) == frozenset()

    def test_repeated_variable_in_atom(self):
        instance = Instance.of(Fact("R", ("a", "a")), Fact("R", ("a", "b")))
        answers = evaluate(q("Q(x) :- R(x, x)"), instance)
        assert answers == frozenset({("a",)})

    def test_constant_head_term(self, employee_instance):
        answers = evaluate(q("Q(Label, n) :- Emp(n, 'it', p)"), employee_instance)
        assert answers == frozenset({("Label", "cat")})

    def test_constant_only_comparison(self):
        instance = Instance.of(Fact("R", ("a",)))
        assert not evaluate_boolean(q("Q() :- R(x), 1 = 2"), instance)
        assert evaluate_boolean(q("Q() :- R(x), 1 != 2"), instance)

    def test_anonymous_variables_do_not_join(self):
        instance = Instance.of(Fact("R", ("a", "b")))
        # Each '-' is a distinct variable, so this is satisfied even though
        # the two anonymous positions hold different values.
        assert evaluate_boolean(q("Q() :- R(-, -)"), instance)


class TestAssignments:
    def test_satisfying_assignments_are_total(self, employee_instance):
        query = q("Q(n) :- Emp(n, d, p)")
        for assignment in satisfying_assignments(query, employee_instance):
            assert set(assignment) == {Variable("n"), Variable("d"), Variable("p")}

    def test_answer_tuple_uses_head_order(self, employee_instance):
        query = q("Q(p, n) :- Emp(n, d, p)")
        assignment = next(iter(satisfying_assignments(query, employee_instance)))
        row = answer_tuple(query, assignment)
        assert row == (assignment[Variable("p")], assignment[Variable("n")])

    def test_possible_answers_over_instances(self):
        query = q("Q(x) :- R(x)")
        instances = [Instance.empty(), Instance.of(Fact("R", ("a",)))]
        answers = possible_answers(query, instances)
        assert frozenset() in answers
        assert frozenset({("a",)}) in answers
