"""Unit tests for the disclosure measure of Section 6.1."""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import (
    decide_security,
    epsilon_of_theorem_6_1,
    leakage_bound_from_epsilon,
    positive_leakage,
    possible_answer_tuples,
)
from repro.exceptions import SecurityAnalysisError
from repro.relational import Domain, RelationSchema, Schema


@pytest.fixture
def emp_dictionary(emp_schema):
    return Dictionary.uniform(emp_schema, Fraction(1, 4))


@pytest.fixture
def binary_dictionary(binary_ab_schema):
    return Dictionary.uniform(binary_ab_schema, Fraction(1, 2))


class TestPossibleAnswerTuples:
    def test_monotone_query_answers_from_full_instance(self, emp_dictionary):
        rows = possible_answer_tuples(q("V(n, d) :- Emp(n, d, p)"), emp_dictionary)
        assert ("n0", "d0") in rows
        assert len(rows) == 4

    def test_selection_restricts_answers(self, emp_dictionary):
        rows = possible_answer_tuples(q("V(n) :- Emp(n, 'd0', p)"), emp_dictionary)
        assert rows == [("n0",), ("n1",)]


class TestPositiveLeakage:
    def test_zero_leakage_for_secure_pair(self, binary_dictionary):
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        result = positive_leakage(secret, view, binary_dictionary)
        assert result.leakage == 0
        assert result.is_secure

    def test_positive_leakage_for_insecure_pair(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        result = positive_leakage(secret, view, binary_dictionary)
        assert result.leakage > 0
        assert not result.is_secure
        assert result.worst_secret_rows is not None
        assert result.posterior > result.prior

    def test_collusion_increases_leakage(self, emp_dictionary):
        # Example 6.2 vs Example 6.3: the (name, department) view leaks more
        # than the department-only view, and colluding with the
        # (department, phone) view leaks even more.
        secret = q("S(n, p) :- Emp(n, d, p)")
        department_view = q("Vd(d) :- Emp(n, d, p)")
        name_department_view = q("Vnd(n, d) :- Emp(n, d, p)")
        department_phone_view = q("Vdp(d, p) :- Emp(n, d, p)")
        weak = positive_leakage(secret, department_view, emp_dictionary)
        stronger = positive_leakage(secret, name_department_view, emp_dictionary)
        collusion = positive_leakage(
            secret, [name_department_view, department_phone_view], emp_dictionary
        )
        assert weak.leakage < stronger.leakage < collusion.leakage

    def test_leakage_decreases_with_larger_expected_size(self, emp_schema):
        # Example 6.2's punchline: the disclosure is ~1/m where m is the
        # expected instance size, so denser databases leak relatively less.
        secret = q("S(n, p) :- Emp(n, d, p)")
        view = q("Vd(d) :- Emp(n, d, p)")
        sparse = Dictionary.uniform(emp_schema, Fraction(1, 8))
        dense = Dictionary.uniform(emp_schema, Fraction(1, 2))
        assert (
            positive_leakage(secret, view, dense).leakage
            < positive_leakage(secret, view, sparse).leakage
        )

    def test_larger_statements_can_be_explored(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        single = positive_leakage(secret, view, binary_dictionary)
        wider = positive_leakage(
            secret, view, binary_dictionary, max_secret_rows=2, max_view_rows=2
        )
        assert wider.explored > single.explored
        assert wider.leakage >= single.leakage

    def test_requires_views(self, binary_dictionary):
        with pytest.raises(SecurityAnalysisError):
            positive_leakage(q("S(y) :- R(x, y)"), [], binary_dictionary)


class TestTheorem61:
    def test_epsilon_zero_for_secure_pair(self, binary_dictionary):
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        assert epsilon_of_theorem_6_1(secret, view, binary_dictionary) == 0

    def test_bound_dominates_measured_leakage(self, emp_dictionary):
        secret = q("S(n, p) :- Emp(n, d, p)")
        view = q("Vd(d) :- Emp(n, d, p)")
        epsilon = epsilon_of_theorem_6_1(secret, view, emp_dictionary)
        assert 0 < epsilon < 1
        bound = leakage_bound_from_epsilon(epsilon)
        measured = positive_leakage(secret, view, emp_dictionary)
        assert float(measured.leakage) <= bound + 1e-9

    def test_epsilon_shrinks_with_database_size(self, emp_schema):
        # ε ≈ 1/m in Example 6.2: a larger expected size gives a smaller ε.
        secret = q("S(n, p) :- Emp(n, d, p)")
        view = q("Vd(d) :- Emp(n, d, p)")
        sparse = Dictionary.uniform(emp_schema, Fraction(1, 8))
        dense = Dictionary.uniform(emp_schema, Fraction(1, 2))
        assert epsilon_of_theorem_6_1(secret, view, dense) < epsilon_of_theorem_6_1(
            secret, view, sparse
        )

    def test_bound_requires_epsilon_below_one(self):
        with pytest.raises(SecurityAnalysisError):
            leakage_bound_from_epsilon(1.0)
        with pytest.raises(SecurityAnalysisError):
            leakage_bound_from_epsilon(-0.1)
        assert leakage_bound_from_epsilon(0.0) == 0.0
