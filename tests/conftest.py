"""Shared fixtures for the test suite.

The fixtures mirror the paper's running examples so that individual
tests read like the corresponding passages: the binary relation
``R(X, Y)`` over ``D = {a, b}`` (Section 4), the employee schema of
Table 1 and the uniform dictionaries used in the worked examples.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.bench import binary_schema, employee_schema, manufacturing_schema
from repro.relational import Domain, RelationSchema, Schema


@pytest.fixture
def binary_ab_schema() -> Schema:
    """The single binary relation ``R(X, Y)`` over ``D = {a, b}``."""
    return binary_schema(("a", "b"))


@pytest.fixture
def binary_abc_schema() -> Schema:
    """``R(X, Y)`` over a three-constant domain."""
    return binary_schema(("a", "b", "c"))


@pytest.fixture
def half_dictionary(binary_ab_schema: Schema) -> Dictionary:
    """The uniform ``P(t) = 1/2`` dictionary of Examples 4.2/4.3."""
    return Dictionary.uniform(binary_ab_schema, Fraction(1, 2))


@pytest.fixture
def emp_schema() -> Schema:
    """``Emp(name, department, phone)`` with two values per attribute."""
    return employee_schema(names=2, departments=2, phones=2)


@pytest.fixture
def manufacturing() -> Schema:
    """The manufacturing-company schema of the introduction."""
    return manufacturing_schema()


@pytest.fixture
def ternary_schema() -> Schema:
    """An untyped ternary relation ``T(a1, a2, a3)`` over three constants."""
    return Schema(
        [RelationSchema("T", ("a1", "a2", "a3"))],
        domain=Domain(["a", "b", "c"]),
    )


@pytest.fixture
def example_42_queries():
    """The (secret, view) pair of Example 4.2 (not secure)."""
    return q("S(y) :- R(x, y)"), q("V(x) :- R(x, y)")


@pytest.fixture
def example_43_queries():
    """The (secret, view) pair of Example 4.3 (secure)."""
    return q("S(y) :- R(y, 'a')"), q("V(x) :- R(x, 'b')")
