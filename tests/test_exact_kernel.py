"""Cross-validation of the compiled probability kernel.

The kernel (``repro.probability.kernel``) must agree **Fraction for
Fraction** with the seed enumeration engine, which is preserved as
:class:`~repro.probability.engine.NaiveExactEngine` exactly for this
purpose.  The suite pits the two against each other on randomized small
schemas and dictionaries (distributions, conditionals, independence
tests, `independence_gap`, `verify_security_probabilistically`
verdicts), plus the two regression regimes named by the issue: analysis
domains mixing numeric and string constants (the bare ``sorted(facts)``
crash) and disconnected supports (component factorization).
"""

import random
from fractions import Fraction

import pytest

from repro.core.prior import (
    PriorViewKnowledge,
    TupleStatusKnowledge,
    verify_with_knowledge,
)
from repro.core.security import (
    independence_gap,
    verify_security_probabilistically,
)
from repro.cq.parser import parse_query as q
from repro.exceptions import (
    IntractableAnalysisError,
    ProbabilityError,
    SecurityAnalysisError,
)
from repro.probability import (
    Dictionary,
    ExactEngine,
    NaiveExactEngine,
    ProbabilityKernel,
    QueryAnswerIs,
    QueryTrue,
    truth_table,
)
from repro.probability.compiled_event import query_truth_bits, subset_zeta
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema
from repro.session.engines import SamplingVerificationEngine


# ---------------------------------------------------------------------------
# Helpers: the Definition 4.1 / Eq. (4) checks recomputed on the seed path
# ---------------------------------------------------------------------------
def naive_eq4(secret, views, dictionary):
    """Eq. (4) verdict and largest violation, recomputed on the seed path."""
    engine = NaiveExactEngine(dictionary)
    joint = engine.joint_answer_distribution([secret, *views])
    secret_marginal, views_marginal = {}, {}
    for key, probability in joint.items():
        secret_marginal[key[0]] = secret_marginal.get(key[0], Fraction(0)) + probability
        views_marginal[key[1:]] = views_marginal.get(key[1:], Fraction(0)) + probability
    gap = Fraction(0)
    for secret_answer, p_secret in secret_marginal.items():
        for view_answers, p_views in views_marginal.items():
            p_joint = joint.get((secret_answer, *view_answers), Fraction(0))
            gap = max(gap, abs(p_joint - p_secret * p_views))
    return gap == 0, gap


def naive_verify(secret, views, dictionary):
    """Eq. (4) verdict recomputed entirely on the seed enumeration."""
    return naive_eq4(secret, views, dictionary)[0]


# ---------------------------------------------------------------------------
# Randomized schema / dictionary / query generators
# ---------------------------------------------------------------------------
DOMAIN_POOLS = [
    ("a", "b"),
    ("a", "b", "c"),
    ("a", 1, "b"),  # mixed numeric/string domain — unsortable without key=repr
    (1, 2, "x"),
]

PROBABILITY_POOL = [
    Fraction(0),
    Fraction(1, 7),
    Fraction(1, 3),
    Fraction(1, 2),
    Fraction(2, 3),
    Fraction(1),
]


def random_setup(rng):
    """A random small schema, dictionary and pool of queries over it."""
    values = rng.choice(DOMAIN_POOLS)
    domain = Domain(values, name="D")
    schema = Schema(
        [RelationSchema("R", ("x", "y")), RelationSchema("T", ("x",))], domain=domain
    )
    from repro.relational.tuples import tuple_space

    overrides = {}
    for fact in tuple_space(schema):
        if rng.random() < 0.5:
            overrides[fact] = rng.choice(PROBABILITY_POOL)
    default = rng.choice([Fraction(1, 3), Fraction(1, 2), Fraction(2, 3)])
    dictionary = Dictionary(schema, overrides, default=default)
    constant = rng.choice(values)
    spelled = repr(constant) if isinstance(constant, str) else str(constant)
    pool = [
        q("Q1(x) :- R(x, y)"),
        q("Q2(y) :- R(x, y)"),
        q(f"Q3(x) :- R(x, {spelled})"),
        q("Q4(x) :- T(x)"),
        q("Q5() :- R(x, x)"),
        q(f"Q6() :- R(x, y), T(y), x = {spelled}"),
        q("Q7(x) :- R(x, x), T(x)"),
    ]
    return schema, dictionary, pool


class TestRandomizedCrossValidation:
    def test_kernel_matches_seed_enumeration(self):
        rng = random.Random(20260727)
        for trial in range(6):
            schema, dictionary, pool = random_setup(rng)
            fast = ExactEngine(dictionary)
            naive = NaiveExactEngine(dictionary)
            secret, view = rng.sample(pool, 2)

            assert fast.answer_distribution(secret) == naive.answer_distribution(
                secret
            ), f"trial {trial}: answer distributions diverge"
            assert fast.joint_answer_distribution(
                [secret, view]
            ) == naive.joint_answer_distribution([secret, view]), (
                f"trial {trial}: joint distributions diverge"
            )
            assert set(fast.possible_answers(secret)) == set(
                naive.possible_answers(secret)
            ), f"trial {trial}: possible answers diverge"

            answer = rng.choice(naive.possible_answers(secret))
            given = rng.choice(naive.possible_answers(view))
            s_event = QueryAnswerIs(secret, answer)
            v_event = QueryAnswerIs(view, given)
            assert fast.probability(s_event) == naive.probability(s_event)
            assert fast.joint_probability([s_event, v_event]) == naive.joint_probability(
                [s_event, v_event]
            )
            if naive.probability(v_event) != 0:
                assert fast.conditional_probability(
                    s_event, v_event
                ) == naive.conditional_probability(s_event, v_event)
            else:
                with pytest.raises(ProbabilityError):
                    fast.conditional_probability(s_event, v_event)
            assert fast.are_independent(s_event, v_event) == naive.are_independent(
                s_event, v_event
            )

    def test_verdicts_and_gaps_match_seed_enumeration(self):
        rng = random.Random(42)
        for trial in range(6):
            schema, dictionary, pool = random_setup(rng)
            secret, view = rng.sample(pool, 2)
            expected_verdict, expected_gap = naive_eq4(secret, [view], dictionary)
            assert (
                verify_security_probabilistically(secret, [view], dictionary)
                == expected_verdict
            ), f"trial {trial}: verdicts diverge"
            gap = independence_gap(secret, [view], dictionary)
            assert gap == expected_gap, f"trial {trial}: independence gaps diverge"
            # Consistency of the two kernel answers with each other.
            assert expected_verdict == (gap == 0)

    def test_truth_table_matches_brute_force(self):
        from repro.cq.evaluation import evaluate_boolean
        from repro.relational.tuples import tuple_space

        rng = random.Random(7)
        for _ in range(10):
            schema, dictionary, pool = random_setup(rng)
            query = rng.choice(pool)
            facts = tuple_space(schema)[: rng.randint(1, 5)]
            table = truth_table(query, facts)
            for mask in range(1 << len(facts)):
                subset = Instance(
                    facts[j] for j in range(len(facts)) if mask >> j & 1
                )
                assert table[mask] == evaluate_boolean(query, subset)


class TestMixedTypeDomains:
    """Regression: bare ``sorted(facts)`` crashed on mixed-type domains."""

    def setup_method(self):
        domain = Domain(["a", 1, "b"], name="mixed")
        self.schema = Schema([RelationSchema("R", ("x", "y"))], domain=domain)
        self.dictionary = Dictionary.uniform(self.schema, Fraction(1, 2))

    def test_exact_engine_handles_mixed_domains(self):
        engine = ExactEngine(self.dictionary)
        query = q("Q(x) :- R(x, y)")
        distribution = engine.answer_distribution(query)
        assert sum(distribution.values()) == 1
        assert len(engine.possible_answers(query)) == len(distribution)
        joint = engine.joint_answer_distribution([query, q("W(y) :- R(x, y)")])
        assert sum(joint.values()) == 1

    def test_seed_engine_handles_mixed_domains(self):
        # The reference path gets the same key=repr fix so cross-validation
        # can cover mixed domains at all.
        naive = NaiveExactEngine(self.dictionary)
        query = q("Q(x) :- R(x, 1)")
        assert sum(naive.answer_distribution(query).values()) == 1
        assert naive.probability(QueryTrue(query)) == ExactEngine(
            self.dictionary
        ).probability(QueryTrue(query))

    def test_mixed_domain_verification_verdict(self):
        secret = q("S(y) :- R(1, y)")
        view = q("V(y) :- R('a', y)")
        assert verify_security_probabilistically(secret, [view], self.dictionary) == (
            naive_verify(secret, [view], self.dictionary)
        )


class TestComponentFactorization:
    """Disconnected supports are enumerated per component and recombined."""

    def setup_method(self):
        domain = Domain(["a", "b", "c"], name="D")
        self.schema = Schema(
            [
                RelationSchema("A", ("x",)),
                RelationSchema("B", ("x",)),
                RelationSchema("C", ("x",)),
            ],
            domain=domain,
        )
        self.dictionary = Dictionary(
            self.schema,
            {Fact("A", ("a",)): Fraction(1, 7), Fact("B", ("b",)): Fraction(3, 5)},
            default=Fraction(1, 3),
        )
        self.qa = q("QA(x) :- A(x)")
        self.qb = q("QB(x) :- B(x)")
        self.qc = q("QC() :- C(x)")

    def test_factorized_joint_matches_seed_enumeration(self):
        fast = ExactEngine(self.dictionary)
        naive = NaiveExactEngine(self.dictionary)
        queries = [self.qa, self.qb, self.qc]
        assert fast.joint_answer_distribution(queries) == naive.joint_answer_distribution(
            queries
        )
        assert verify_security_probabilistically(
            self.qa, [self.qb], self.dictionary
        )  # disjoint supports are independent for every dictionary
        assert independence_gap(self.qa, [self.qb], self.dictionary) == 0

    def test_factorization_raises_the_effective_support_bound(self):
        # The union support has 9 facts; with a bound of 3 the seed engine
        # refuses, while the kernel enumerates three 3-fact components.
        naive = NaiveExactEngine(self.dictionary, max_support_size=3)
        with pytest.raises(IntractableAnalysisError):
            naive.joint_answer_distribution([self.qa, self.qb, self.qc])
        fast = ExactEngine(self.dictionary, max_support_size=3)
        distribution = fast.joint_answer_distribution([self.qa, self.qb, self.qc])
        assert sum(distribution.values()) == 1

    def test_connected_component_still_guarded(self):
        fast = ExactEngine(self.dictionary, max_support_size=2)
        with pytest.raises(IntractableAnalysisError):
            fast.answer_distribution(self.qa)  # one 3-fact component


class TestKernelSharingAndModes:
    def setup_method(self):
        domain = Domain(["a", "b"], name="D")
        self.schema = Schema([RelationSchema("R", ("x", "y"))], domain=domain)
        self.dictionary = Dictionary.uniform(self.schema, Fraction(1, 3))

    def test_shared_kernel_identity_and_distribution_memo(self):
        kernel = ProbabilityKernel.shared(self.dictionary)
        assert ProbabilityKernel.shared(self.dictionary) is kernel
        assert ExactEngine(self.dictionary).kernel is kernel
        queries = [q("Q1(x) :- R(x, y)"), q("Q2(y) :- R(x, y)")]
        before = dict(kernel.stats)
        first = kernel.joint_answer_distribution(queries)
        mid = dict(kernel.stats)
        second = kernel.joint_answer_distribution(queries)
        after = dict(kernel.stats)
        assert first == second
        assert mid["distributions"] == before["distributions"] + 1
        assert after["distributions"] == mid["distributions"]
        assert after["distribution_hits"] == mid["distribution_hits"] + 1

    def test_verification_reuses_the_shared_joint_distribution(self):
        kernel = ProbabilityKernel.shared(self.dictionary)
        secret, view = q("S(y) :- R(x, y)"), q("V(x) :- R(x, y)")
        verify_security_probabilistically(secret, [view], self.dictionary)
        enumerations = kernel.stats["distributions"]
        independence_gap(secret, [view], self.dictionary)
        assert kernel.stats["distributions"] == enumerations  # pure cache hit

    def test_float_mode_approximates_exact_mode(self):
        exact = ExactEngine(self.dictionary)
        fast = ExactEngine(self.dictionary, exact=False)
        query = q("Q(x) :- R(x, y)")
        exact_distribution = exact.answer_distribution(query)
        float_distribution = fast.answer_distribution(query)
        assert set(exact_distribution) == set(float_distribution)
        for answer, probability in float_distribution.items():
            assert isinstance(probability, float)
            assert abs(probability - float(exact_distribution[answer])) < 1e-12

    def test_shared_registry_is_dropped_with_the_dictionary(self):
        import gc
        import weakref

        from repro.probability.kernel import _SHARED

        before = len(_SHARED)
        dictionary = Dictionary.uniform(self.schema, Fraction(1, 5))
        kernel = ProbabilityKernel.shared(dictionary)
        kernel.answer_distribution(q("Q(x) :- R(x, y)"))
        ref = weakref.ref(dictionary)
        assert len(_SHARED) == before + 1
        del dictionary, kernel
        gc.collect()
        assert ref() is None, "shared kernels must not keep their dictionary alive"
        assert len(_SHARED) == before

    def test_engine_keeps_its_dictionary_alive(self):
        import gc
        import weakref

        dictionary = Dictionary.uniform(self.schema, Fraction(1, 7))
        engine = ExactEngine(dictionary)
        ref = weakref.ref(dictionary)
        del dictionary
        gc.collect()
        assert ref() is not None
        assert sum(engine.answer_distribution(q("Q(x) :- R(x, y)")).values()) == 1

    def test_opaque_predicates_keep_the_seed_support_bound(self):
        # A PredicateEvent component gets none of the compiled speedup, so
        # its *default* bound stays the seed's 22 even though structural
        # components now default to 26; an explicit bound is honoured.
        from repro.core.prior import CardinalityConstraintKnowledge, verify_with_knowledge

        big_schema = Schema(
            [RelationSchema("R", ("x", "y", "z"))], domain=Domain.of("a", "b", "c")
        )  # 27-fact tuple space
        dictionary = Dictionary.uniform(big_schema, Fraction(1, 2))
        knowledge = CardinalityConstraintKnowledge("at_most", 2)  # support unknown
        with pytest.raises(IntractableAnalysisError):
            verify_with_knowledge(
                q("S(x) :- R(x, y, z)"), [q("V(y) :- R(x, y, z)")], knowledge, dictionary
            )

    def test_zeta_transform_is_superset_closure(self):
        n = 4
        witnesses = {0b0011, 0b1000}
        bits = 0
        for w in witnesses:
            bits |= 1 << w
        closed = subset_zeta(bits, n)
        for mask in range(1 << n):
            expected = any(w & mask == w for w in witnesses)
            assert bool(closed >> mask & 1) == expected


class TestKnowledgeThroughKernel:
    def setup_method(self):
        domain = Domain(["a", "b"], name="D")
        self.schema = Schema([RelationSchema("R", ("x", "y"))], domain=domain)
        self.dictionary = Dictionary.uniform(self.schema, Fraction(1, 2))

    def test_tuple_status_knowledge_matches_legacy_formula(self):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        knowledge = TupleStatusKnowledge(present=[Fact("R", ("a", "b"))])
        result = verify_with_knowledge(secret, [view], knowledge, self.dictionary)
        # Legacy Eq. (7) evaluation on the seed engine.
        naive = NaiveExactEngine(self.dictionary)
        event = knowledge.event(self.schema)
        p_k = naive.probability(event)
        expected = True
        import itertools

        for s in naive.possible_answers(secret):
            s_event = QueryAnswerIs(secret, s)
            p_s_k = naive.joint_probability([s_event, event])
            for v in naive.possible_answers(view):
                v_event = QueryAnswerIs(view, v)
                p_v_k = naive.joint_probability([v_event, event])
                p_all = naive.joint_probability([s_event, v_event, event])
                if p_all * p_k != p_s_k * p_v_k:
                    expected = False
        assert result == expected

    def test_prior_view_knowledge_matches_legacy_formula(self):
        secret = q("S() :- R('a', x)")
        view = q("V() :- R(x, 'b')")
        prior = PriorViewKnowledge(q("U() :- R('a', 'b')"), boolean_answer=True)
        result = verify_with_knowledge(secret, view, prior, self.dictionary)
        assert isinstance(result, bool)

    def test_zero_probability_knowledge_raises(self):
        from repro.exceptions import KnowledgeError

        impossible = TupleStatusKnowledge(
            present=[Fact("R", ("a", "a"))], absent=[Fact("R", ("a", "b"))]
        )
        zero_dictionary = Dictionary(
            self.schema, {Fact("R", ("a", "a")): 0}, default=Fraction(1, 2)
        )
        with pytest.raises(KnowledgeError):
            verify_with_knowledge(
                q("S() :- R(x, x)"), [q("V() :- R(x, y)")], impossible, zero_dictionary
            )


class TestSamplingSeedValidation:
    """The ``seed`` knob is validated like ``samples``/``tolerance_sigmas``."""

    def setup_method(self):
        domain = Domain(["a", "b"], name="D")
        self.schema = Schema([RelationSchema("R", ("x", "y"))], domain=domain)
        self.dictionary = Dictionary.uniform(self.schema, Fraction(1, 2))
        self.engine = SamplingVerificationEngine()
        self.secret = q("S(y) :- R(x, y)")
        self.views = [q("V(x) :- R(x, y)")]

    @pytest.mark.parametrize("bad_seed", [True, False, None, 1.5, "0"])
    def test_invalid_seeds_are_rejected_and_named(self, bad_seed):
        with pytest.raises(SecurityAnalysisError) as excinfo:
            self.engine.verify(
                self.secret, self.views, self.dictionary, samples=10, seed=bad_seed
            )
        assert repr(bad_seed) in str(excinfo.value)

    def test_valid_seed_still_accepted(self):
        verdict = self.engine.verify(
            self.secret, self.views, self.dictionary, samples=50, seed=3
        )
        assert isinstance(verdict, bool)
