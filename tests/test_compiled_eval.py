"""Compiled query-evaluation engine: cross-validation and regressions.

The compiled planner/evaluator (`repro.cq.plan` + `repro.cq.compiled`)
must be answer-identical to the surviving naive backtracking evaluator
on every query the library can express — random queries with
comparisons, constants, repeated variables, mixed-type domains and
empty relations — and `delta_without`/`answer_contains` must agree with
full re-evaluation on random (instance, fact) pairs.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.cq import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    UnionQuery,
    Variable,
    answer_contains,
    delta_apply,
    delta_apply_many,
    delta_changes,
    delta_with,
    eval_engine_scope,
    evaluate,
    evaluate_boolean,
    evaluation_engine,
    naive_evaluate,
    naive_evaluate_boolean,
    naive_satisfying_assignments,
    plan_atom_order,
    plan_for,
    q,
    satisfying_assignments,
)
from repro.cq.compiled import STATS, evaluation_stats, reset_evaluation_stats
from repro.cq.homomorphism import homomorphisms_into_instance
from repro.exceptions import EvaluationError
from repro.relational import Fact, Instance
from repro.relational.instance import INDEX_STATS

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
#: Relation name -> arity.  ``T`` often ends up with no facts (empty-relation
#: coverage); values mix ints and strings (mixed-type domains).
RELATIONS = {"R": 2, "S": 2, "T": 1}
MIXED_VALUES = [0, 1, 2, "a", "b"]
INT_VALUES = [0, 1, 2, 3]
VARIABLES = [Variable(n) for n in ("x", "y", "z", "w")]


def _term_strategy(values):
    return st.one_of(
        st.sampled_from(VARIABLES),
        st.builds(Constant, st.sampled_from(values)),
    )


def _atom_strategy(values):
    def build(relation, draw_terms):
        return Atom(relation, draw_terms)

    return st.sampled_from(sorted(RELATIONS)).flatmap(
        lambda relation: st.tuples(
            *[_term_strategy(values)] * RELATIONS[relation]
        ).map(lambda terms: Atom(relation, terms))
    )


def _query_strategy(values, operators):
    @st.composite
    def build(draw):
        body = tuple(draw(st.lists(_atom_strategy(values), min_size=1, max_size=3)))
        body_vars = sorted({v for atom in body for v in atom.variables})
        head_pool = [Constant(draw(st.sampled_from(values)))] + body_vars
        head = tuple(
            draw(st.sampled_from(head_pool))
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        )
        comparisons = []
        if body_vars:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                left = draw(st.sampled_from(body_vars))
                right = draw(
                    st.one_of(
                        st.sampled_from(body_vars),
                        st.builds(Constant, st.sampled_from(values)),
                    )
                )
                comparisons.append(
                    Comparison(left, draw(st.sampled_from(operators)), right)
                )
        return ConjunctiveQuery(head, body, tuple(comparisons))

    return build()


def _fact_strategy(values):
    return st.sampled_from(sorted(RELATIONS)).flatmap(
        lambda relation: st.tuples(
            *[st.sampled_from(values)] * RELATIONS[relation]
        ).map(lambda vs: Fact(relation, vs))
    )


def _instance_strategy(values, max_size=14):
    return st.lists(_fact_strategy(values), max_size=max_size).map(Instance)


def _assignment_set(assignments):
    return frozenset(frozenset(a.items()) for a in assignments)


# ---------------------------------------------------------------------------
# Hypothesis cross-validation: compiled vs naive
# ---------------------------------------------------------------------------
class TestCompiledMatchesNaive:
    # Mixed-type domains with order predicates can raise QueryError at
    # engine-dependent points, so the general strategy sticks to =/!=
    # (never type-sensitive); order predicates get an int-only strategy.
    @settings(max_examples=120, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
    )
    def test_mixed_type_domains_equality_comparisons(self, query, instance):
        plan = plan_for(query)
        assert plan.evaluate(instance) == naive_evaluate(query, instance)
        assert plan.evaluate_boolean(instance) == naive_evaluate_boolean(
            query, instance
        )
        assert _assignment_set(plan.assignments(instance)) == (
            _assignment_set(naive_satisfying_assignments(query, instance))
        )

    @settings(max_examples=120, deadline=None)
    @given(
        query=_query_strategy(INT_VALUES, ["=", "!=", "<", "<=", ">", ">="]),
        instance=_instance_strategy(INT_VALUES),
    )
    def test_int_domains_order_comparisons(self, query, instance):
        plan = plan_for(query)
        assert plan.evaluate(instance) == naive_evaluate(query, instance)
        assert _assignment_set(plan.assignments(instance)) == (
            _assignment_set(naive_satisfying_assignments(query, instance))
        )

    @settings(max_examples=120, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        fact=_fact_strategy(MIXED_VALUES),
    )
    def test_delta_without_matches_full_reevaluation(self, query, instance, fact):
        with_fact = instance.add(fact)
        expected = naive_evaluate(query, with_fact) != naive_evaluate(
            query, with_fact.remove(fact)
        )
        plan = plan_for(query)
        assert plan.delta_without(with_fact, fact) == expected
        # A fact absent from the instance never changes the answer.
        assert plan.delta_without(instance.remove(fact), fact) is False

    @settings(max_examples=120, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        fact=_fact_strategy(MIXED_VALUES),
    )
    def test_delta_with_matches_full_reevaluation(self, query, instance, fact):
        without = instance.remove(fact)
        expected = naive_evaluate(query, without.add(fact)) != naive_evaluate(
            query, without
        )
        plan = plan_for(query)
        assert plan.delta_with(without, fact) == expected
        # A fact already present never changes the answer.
        assert plan.delta_with(instance.add(fact), fact) is False

    @settings(max_examples=100, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        added=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
        removed=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
    )
    def test_delta_apply_matches_full_reevaluation(
        self, query, instance, added, removed
    ):
        with eval_engine_scope("compiled"):
            after, gained, lost = delta_apply(query, instance, added, removed)
        # A fact listed in both sets ends up present.
        assert after.facts == (instance.facts - set(removed)) | set(added)
        before_answer = naive_evaluate(query, instance)
        after_answer = naive_evaluate(query, after)
        assert gained == after_answer - before_answer
        assert lost == before_answer - after_answer

    @settings(max_examples=60, deadline=None)
    @given(
        first=_query_strategy(MIXED_VALUES, ["=", "!="]),
        second=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        added=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
        removed=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
    )
    def test_delta_apply_many_matches_per_query_apply(
        self, first, second, instance, added, removed
    ):
        with eval_engine_scope("compiled"):
            after, changes = delta_apply_many(
                (first, second), instance, added, removed
            )
            assert len(changes) == 2
            for query, change in zip((first, second), changes):
                solo_after, gained, lost = delta_apply(query, instance, added, removed)
                assert solo_after.facts == after.facts
                assert change == (gained, lost)

    @settings(max_examples=120, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
    )
    def test_answer_contains_matches_membership(self, query, instance):
        answer = naive_evaluate(query, instance)
        plan = plan_for(query)
        for row in answer:
            assert plan.derives_row(instance, row)
        # A row that differs from every produced one is never contained.
        probe = ("no-such-value",) * query.arity
        assert plan.derives_row(instance, probe) == (probe in answer)


# ---------------------------------------------------------------------------
# Deterministic coverage of the edges the strategies may under-sample
# ---------------------------------------------------------------------------
class TestCompiledEdges:
    def test_empty_relation_and_empty_instance(self):
        query = q("Q(x) :- R(x, y), T(x)")
        assert evaluate(query, Instance.empty()) == frozenset()
        only_r = Instance.of(Fact("R", ("a", "b")))
        assert evaluate(query, only_r) == frozenset()

    def test_repeated_variables_across_atoms_and_in_head(self):
        instance = Instance.of(
            Fact("R", ("a", "a")), Fact("R", ("a", "b")), Fact("S", ("b", "a"))
        )
        query = q("Q(x, x) :- R(x, x), S(y, x)")
        assert evaluate(query, instance) == naive_evaluate(query, instance) == frozenset(
            {("a", "a")}
        )

    def test_head_constants(self):
        instance = Instance.of(Fact("R", ("a", "b")))
        query = ConjunctiveQuery(
            (Constant("lit"), Variable("x")),
            (Atom("R", (Variable("x"), Variable("y"))),),
        )
        assert evaluate(query, instance) == frozenset({("lit", "a")})
        assert answer_contains(query, instance, ("lit", "a"))
        assert not answer_contains(query, instance, ("other", "a"))
        assert not answer_contains(query, instance, ("lit",))

    def test_arity_mismatched_facts_are_ignored(self):
        # Instances are plain fact sets: a relation may hold facts of
        # several arities and only the matching ones may join.
        instance = Instance.of(Fact("R", ("a",)), Fact("R", ("a", "b")))
        query = q("Q(x, y) :- R(x, y)")
        assert evaluate(query, instance) == naive_evaluate(query, instance) == frozenset(
            {("a", "b")}
        )

    def test_union_queries_dispatch_per_disjunct(self):
        union = UnionQuery([q("Q(x) :- R(x, y)"), q("Q(x) :- S(x, y)")])
        instance = Instance.of(Fact("R", ("a", "b")), Fact("S", ("c", "d")))
        assert evaluate(union, instance) == frozenset({("a",), ("c",)})
        assert answer_contains(union, instance, ("c",))
        # Removing the only S fact loses ("c",) from the union's answer...
        assert delta_changes(union, instance, Fact("S", ("c", "d")))
        # ...but a row still derivable through the other disjunct survives.
        both = instance.add(Fact("S", ("a", "z")))
        assert not delta_changes(
            UnionQuery([q("Q(x) :- R(x, y)"), q("Q(x) :- S(x, y)")]),
            both,
            Fact("S", ("a", "z")),
        )

    def test_delta_skips_facts_unifying_with_no_subgoal(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "compiled")
        query = q("Q(x) :- R(x, y)")
        instance = Instance.of(Fact("R", ("a", "b")), Fact("S", ("a", "b")))
        before = STATS["delta_unification_skips"]
        assert not delta_changes(query, instance, Fact("S", ("a", "b")))
        assert STATS["delta_unification_skips"] == before + 1

    def test_constant_only_comparison_checked_lazily(self):
        # The naive engine only checks constant-only comparisons once a
        # subgoal matches; an unsatisfiable body never raises.
        query = ConjunctiveQuery(
            (),
            (Atom("R", (Variable("x"),)),),
            (Comparison(Constant(1), "<", Constant("a")),),
        )
        assert evaluate(query, Instance.empty()) == frozenset()
        assert naive_evaluate(query, Instance.empty()) == frozenset()


# ---------------------------------------------------------------------------
# Planner ordering + homomorphism order-invariance (satellite)
# ---------------------------------------------------------------------------
class TestPlannerOrdering:
    def test_most_selective_atom_probes_first(self):
        query = ConjunctiveQuery(
            (),
            (
                Atom("R", (Variable("x"), Variable("y"))),
                Atom("S", (Constant("a"), Variable("z"))),
            ),
        )
        assert plan_atom_order(query)[0] == 1

    def test_connected_atoms_follow_bound_variables(self):
        query = q("Q() :- R(x, y), S(y, z), T(w)")
        order = plan_atom_order(query)
        # T shares no variable with R/S, so it must not interrupt the
        # R-S chain (whichever of R/S starts, the other follows).
        assert set(order[:2]) == {0, 1}

    @pytest.mark.parametrize("engine", ["compiled", "naive"])
    def test_homomorphism_counts_are_body_order_invariant(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", engine)
        instance = Instance.of(
            Fact("R", ("a", "b")),
            Fact("R", ("b", "b")),
            Fact("S", ("b", "a")),
            Fact("S", ("b", "b")),
        )
        base = q("Q(x) :- R(x, y), S(y, z), R(z, w)")
        counts = set()
        for permutation in itertools.permutations(range(3)):
            permuted = ConjunctiveQuery(
                base.head,
                tuple(base.body[i] for i in permutation),
                base.comparisons,
            )
            counts.add(len(list(homomorphisms_into_instance(permuted, instance))))
        assert len(counts) == 1


# ---------------------------------------------------------------------------
# Engine selection + observability
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_default_engine_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_ENGINE", raising=False)
        assert evaluation_engine() == "compiled"

    def test_blank_value_falls_back_to_compiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "  ")
        assert evaluation_engine() == "compiled"

    def test_unknown_engine_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "vectorised")
        with pytest.raises(EvaluationError):
            evaluate(q("Q(x) :- R(x)"), Instance.empty())

    def test_naive_engine_routes_every_entry_point(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "naive")
        query = q("Q(x) :- R(x, y)")
        instance = Instance.of(Fact("R", ("a", "b")))
        before = STATS["naive_evaluations"]
        evaluate(query, instance)
        evaluate_boolean(query, instance)
        list(satisfying_assignments(query, instance))
        answer_contains(query, instance, ("a",))
        delta_changes(query, instance, Fact("R", ("a", "b")))
        assert STATS["naive_evaluations"] > before + 3

    def test_index_built_once_per_instance(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "compiled")
        query = q("Q(y) :- R('a', y)")
        instance = Instance.of(Fact("R", ("a", "b")), Fact("R", ("c", "d")))
        evaluate(query, instance)
        builds = INDEX_STATS["builds"]
        evaluate(query, instance)
        evaluate(query, instance)
        assert INDEX_STATS["builds"] == builds
        assert INDEX_STATS["reuses"] >= 2

    def test_single_fact_delta_patches_parent_indexes(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "compiled")
        query = q("Q(y) :- R('a', y)")
        instance = Instance.of(Fact("R", ("a", "b")), Fact("R", ("c", "d")))
        evaluate(query, instance)  # builds the ('R', (0,)) index
        builds = INDEX_STATS["builds"]
        patched = INDEX_STATS["patched"]
        child = instance.add(Fact("R", ("a", "z")))
        assert INDEX_STATS["patched"] > patched
        # The child answers through the patched index, never rebuilding.
        assert evaluate(query, child) == frozenset({("b",), ("z",)})
        assert INDEX_STATS["builds"] == builds
        grandchild = child.remove(Fact("R", ("a", "b")))
        assert evaluate(query, grandchild) == frozenset({("z",)})
        assert INDEX_STATS["builds"] == builds
        assert evaluation_stats()["index_patched"] == INDEX_STATS["patched"]

    def test_evaluation_stats_document(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", "compiled")
        reset_evaluation_stats()
        query = q("Q(x) :- R(x, y), S(y, z)")
        instance = Instance.of(Fact("R", ("a", "b")), Fact("S", ("b", "c")))
        evaluate(query, instance)
        document = evaluation_stats()
        assert document["engine"] == "compiled"
        assert document["compiled_evaluations"] == 1
        assert document["plans_compiled"] == 1
        assert document["index_probes"] >= 1
        assert set(document) >= {"index_builds", "index_reuses", "delta_calls"}

    def test_auditor_observability_surfaces_evaluator_counters(self):
        from repro.audit import SecurityAuditor
        from repro.bench import employee_schema

        auditor = SecurityAuditor(employee_schema())
        document = auditor.observability()
        assert "query_evaluation" in document
        assert document["query_evaluation"]["engine"] in ("compiled", "naive", "sql")


# ---------------------------------------------------------------------------
# Criticality engines keep their verdicts on both evaluation engines
# ---------------------------------------------------------------------------
class TestCriticalityCrossValidation:
    @pytest.mark.parametrize("engine", ["compiled", "naive"])
    def test_critical_tuples_invariant_under_eval_engine(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_ENGINE", engine)
        from repro.bench import employee_schema
        from repro.core.criticality import create_criticality_engine

        schema = employee_schema()
        query = q("S(n) :- Emp(n, d, p)").boolean_specialisation(("n0",))
        results = {
            name: create_criticality_engine(name).critical_tuples(query, schema)
            for name in ("minimal", "naive", "pruned-parallel")
        }
        assert len(set(results.values())) == 1
        assert results["minimal"]
