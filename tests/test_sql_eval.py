"""SQL evaluation backend: three-engine cross-validation and plumbing.

The sql engine compiles join plans into SQLite statements, so its
answers must be indistinguishable from both the compiled and the naive
engines on every query the library can express — including mixed-type
domains, empty relations, comparison-heavy queries and unions — and the
delta entry points must agree with full re-evaluation.  The suite also
pins the fallback contract (unstorable values quietly re-route through
the compiled engine) and the `eval_engine` plumbing through sessions,
auditors and the wire protocol.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from test_compiled_eval import (
    INT_VALUES,
    MIXED_VALUES,
    _assignment_set,
    _fact_strategy,
    _instance_strategy,
    _query_strategy,
)

from repro.cq import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    answer_contains,
    delta_apply,
    delta_apply_many,
    delta_changes,
    delta_with,
    eval_engine_scope,
    evaluate,
    evaluate_boolean,
    evaluation_engine,
    q,
    satisfying_assignments,
    union_of,
)
from repro.cq.compiled import evaluation_stats, reset_evaluation_stats
from repro.cq.sql import SQL_STATS
from repro.exceptions import EvaluationError
from repro.relational import Fact, Instance
from repro.service.protocol import ProtocolError, parse_request, session_key
from repro.session import AnalysisSession
from repro.storage import SQLiteFactStore

ENGINES = ("compiled", "naive", "sql")

#: Type-punning pool: every int appears alongside its string spelling
#: (and a float with its own), so type-uniform columns meet constants,
#: probes and facts of the *other* type.  Any column affinity in the
#: store would make SQLite coerce these together; Python never does.
NUMSTR_VALUES = [0, 1, 2, "0", "1", "2", 1.5, "1.5"]


def _per_engine(fn):
    """Run ``fn`` once per engine and return the three results by name."""
    results = {}
    for engine in ENGINES:
        with eval_engine_scope(engine):
            results[engine] = fn()
    return results


def _unanimous(fn):
    results = _per_engine(fn)
    assert results["sql"] == results["compiled"] == results["naive"]
    return results["sql"]


# ---------------------------------------------------------------------------
# Hypothesis cross-validation: sql vs compiled vs naive
# ---------------------------------------------------------------------------
class TestSqlMatchesOtherEngines:
    # As in test_compiled_eval: order predicates over mixed-type domains
    # raise QueryError at engine-dependent points (and SQLite would
    # happily order across storage classes), so the general strategy
    # sticks to =/!= and order predicates get an int-only strategy.
    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
    )
    def test_mixed_type_domains_equality_comparisons(self, query, instance):
        _unanimous(lambda: evaluate(query, instance))
        _unanimous(lambda: evaluate_boolean(query, instance))
        _unanimous(
            lambda: _assignment_set(satisfying_assignments(query, instance))
        )

    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(NUMSTR_VALUES, ["=", "!="]),
        instance=_instance_strategy(NUMSTR_VALUES),
        fact=_fact_strategy(NUMSTR_VALUES),
        probe=st.lists(st.sampled_from(NUMSTR_VALUES), max_size=3),
    )
    def test_numeric_string_type_punning(self, query, instance, fact, probe):
        # Regression pool for the affinity bug: typed columns once let
        # SQLite match the constant "1" against an all-int column.
        _unanimous(lambda: evaluate(query, instance))
        _unanimous(lambda: evaluate_boolean(query, instance))
        _unanimous(lambda: answer_contains(query, instance, tuple(probe)))
        _unanimous(lambda: delta_changes(query, instance, fact))

    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(INT_VALUES, ["=", "!=", "<", "<=", ">", ">="]),
        instance=_instance_strategy(INT_VALUES),
    )
    def test_int_domains_order_comparisons(self, query, instance):
        _unanimous(lambda: evaluate(query, instance))
        _unanimous(
            lambda: _assignment_set(satisfying_assignments(query, instance))
        )

    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        probe=st.lists(st.sampled_from(MIXED_VALUES), max_size=3),
    )
    def test_answer_contains(self, query, instance, probe):
        with eval_engine_scope("compiled"):
            answers = evaluate(query, instance)
        rows = list(answers)[:3] + [tuple(probe)]
        for row in rows:
            _unanimous(lambda: answer_contains(query, instance, row))

    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        fact=_fact_strategy(MIXED_VALUES),
    )
    def test_delta_changes(self, query, instance, fact):
        _unanimous(lambda: delta_changes(query, instance, fact))

    @settings(max_examples=50, deadline=None)
    @given(
        first=_query_strategy(MIXED_VALUES, ["=", "!="]),
        second=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        fact=_fact_strategy(MIXED_VALUES),
    )
    def test_unions(self, first, second, instance, fact):
        assume(len(first.head) == len(second.head))
        union = union_of(first, second)
        _unanimous(lambda: evaluate(union, instance))
        _unanimous(lambda: evaluate_boolean(union, instance))
        _unanimous(lambda: delta_changes(union, instance, fact))
        _unanimous(lambda: delta_with(union, instance, fact))

    @settings(max_examples=80, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        fact=_fact_strategy(MIXED_VALUES),
    )
    def test_delta_with(self, query, instance, fact):
        _unanimous(lambda: delta_with(query, instance, fact))

    @settings(max_examples=60, deadline=None)
    @given(
        query=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        added=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
        removed=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
    )
    def test_delta_apply(self, query, instance, added, removed):
        def run():
            after, gained, lost = delta_apply(query, instance, added, removed)
            return (after.facts, gained, lost)

        _unanimous(run)

    @settings(max_examples=40, deadline=None)
    @given(
        first=_query_strategy(MIXED_VALUES, ["=", "!="]),
        second=_query_strategy(MIXED_VALUES, ["=", "!="]),
        instance=_instance_strategy(MIXED_VALUES),
        added=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
        removed=st.lists(_fact_strategy(MIXED_VALUES), max_size=3),
    )
    def test_delta_apply_many(self, first, second, instance, added, removed):
        def run():
            after, changes = delta_apply_many(
                (first, second), instance, added, removed
            )
            return (after.facts, changes)

        _unanimous(run)

    def test_delta_apply_mutates_a_store_in_place(self):
        store = SQLiteFactStore.mirror(
            [Fact("R", (1, 2)), Fact("S", (2, 3)), Fact("R", (4, 4))]
        )
        query = q("Q(x, z) :- R(x, y), S(y, z)")
        with eval_engine_scope("sql"):
            after, gained, lost = delta_apply(
                query, store, added=[Fact("S", (4, 9))], removed=[Fact("S", (2, 3))]
            )
        assert after is store
        assert Fact("S", (4, 9)) in store and Fact("S", (2, 3)) not in store
        assert gained == frozenset({(4, 9)})
        assert lost == frozenset({(1, 3)})


# ---------------------------------------------------------------------------
# Affinity regressions: int vs numeric-looking string, pinned exactly
# ---------------------------------------------------------------------------
class TestNoAffinityCoercion:
    """Typed store columns once made SQLite coerce 1 and "1" together.

    Each case pins one concrete path the reviewer showed diverging:
    constants against type-uniform columns, joins across differently-
    typed columns, head-seeded probes and the delta membership guard.
    """

    INT_FACTS = Instance.of(Fact("R", (1,)), Fact("R", (2,)))

    def test_string_constant_never_matches_an_int_column(self):
        query = ConjunctiveQuery((), (Atom("R", (Constant("1"),)),), ())
        assert _unanimous(lambda: evaluate_boolean(query, self.INT_FACTS)) is False
        assert _unanimous(lambda: evaluate(query, self.INT_FACTS)) == frozenset()

    def test_int_constant_never_matches_a_string_column(self):
        instance = Instance.of(Fact("R", ("1",)), Fact("R", ("2",)))
        query = ConjunctiveQuery((), (Atom("R", (Constant(1),)),), ())
        assert _unanimous(lambda: evaluate_boolean(query, instance)) is False

    def test_join_across_differently_typed_columns_is_empty(self):
        instance = Instance.of(Fact("R", (1,)), Fact("S", ("1",)))
        query = q("Q(x) :- R(x), S(x)")
        assert _unanimous(lambda: evaluate(query, instance)) == frozenset()

    def test_head_seeded_probe_respects_types(self):
        query = q("Q(x) :- R(x)")
        assert _unanimous(
            lambda: answer_contains(query, self.INT_FACTS, ("1",))
        ) is False
        assert _unanimous(
            lambda: answer_contains(query, self.INT_FACTS, (1,))
        ) is True

    def test_delta_membership_guard_respects_types(self):
        # Fact("R", ("1",)) is not in the instance, so removing it can
        # never change the answer — the guard must not be fooled by a
        # coerced membership probe.
        query = q("Q(x) :- R(x)")
        assert _unanimous(
            lambda: delta_changes(query, self.INT_FACTS, Fact("R", ("1",)))
        ) is False
        assert _unanimous(
            lambda: delta_changes(query, self.INT_FACTS, Fact("R", (1,)))
        ) is True

    def test_store_membership_respects_types(self):
        store = SQLiteFactStore.mirror([Fact("R", (1,))])
        assert Fact("R", ("1",)) not in store
        assert Fact("R", (1,)) in store


# ---------------------------------------------------------------------------
# Store-backed evaluation
# ---------------------------------------------------------------------------
class TestStoreBackedEvaluation:
    FACTS = [
        Fact("R", (1, 2)),
        Fact("R", (2, 3)),
        Fact("R", (2, "a")),
        Fact("S", ("a", 1)),
    ]

    def test_every_engine_accepts_a_fact_store(self):
        store = SQLiteFactStore.mirror(self.FACTS)
        query = q("Q(x, z) :- R(x, y), S(y, z)")
        expected = evaluate(query, Instance(self.FACTS))
        assert _unanimous(lambda: evaluate(query, store)) == expected
        assert _unanimous(lambda: evaluate_boolean(query, store)) is True
        _unanimous(lambda: delta_changes(query, store, Fact("S", ("a", 1))))

    def test_sql_runs_directly_against_a_file_store(self, tmp_path):
        with SQLiteFactStore(tmp_path / "facts.db") as store:
            store.load_facts(self.FACTS)
            with eval_engine_scope("sql"):
                answers = evaluate(q("Q(y) :- R(2, y)"), store)
        assert answers == {(3,), ("a",)}


# ---------------------------------------------------------------------------
# Engine selection and fallback
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_scope_overrides_and_restores(self):
        ambient = evaluation_engine()
        with eval_engine_scope("sql"):
            assert evaluation_engine() == "sql"
            with eval_engine_scope("naive"):
                assert evaluation_engine() == "naive"
            assert evaluation_engine() == "sql"
        assert evaluation_engine() == ambient

    def test_none_scope_is_a_no_op(self):
        with eval_engine_scope(None) as resolved:
            assert resolved == evaluation_engine()

    def test_unknown_engine_error_names_all_three(self):
        with pytest.raises(EvaluationError) as excinfo:
            with eval_engine_scope("vectorised"):
                pass  # pragma: no cover
        message = str(excinfo.value)
        for name in ENGINES:
            assert f"'{name}'" in message
        assert "vectorised" in message


class TestFallback:
    def test_unstorable_instance_values_fall_back_to_compiled(self):
        # Symbolic values (the asymptotic engine's labeled nulls, or any
        # non-scalar) cannot live in a sqlite column; the sql engine
        # must still answer, via the compiled engine, and say so in its
        # counters.
        instance = Instance.of(Fact("R", ((1, 2), 3)), Fact("R", (4, 5)))
        query = q("Q(x) :- R(x, y)")
        before = SQL_STATS["sql_fallbacks"]
        with eval_engine_scope("sql"):
            answers = evaluate(query, instance)
        assert answers == {((1, 2),), (4,)}
        assert SQL_STATS["sql_fallbacks"] == before + 1

    def test_unstorable_query_constant_falls_back(self):
        query = ConjunctiveQuery(
            (Variable("x"),),
            (Atom("R", (Variable("x"), Constant(None))),),
            (),
        )
        instance = Instance.of(Fact("R", (1, None)), Fact("R", (2, 3)))
        before = SQL_STATS["sql_fallbacks"]
        with eval_engine_scope("sql"):
            assert evaluate(query, instance) == {(1,)}
        assert SQL_STATS["sql_fallbacks"] > before

    def test_union_fallback_does_not_duplicate_assignments(self):
        # A storable first disjunct followed by an unstorable one: the
        # whole call must fall back *before* the first yield, or the
        # fallback re-yields the first disjunct's assignments.
        good = q("Q(x) :- R(x, y)")
        bad = ConjunctiveQuery(
            (Variable("x"),),
            (Atom("R", (Variable("x"), Constant(None))),),
            (),
        )
        union = union_of(good, bad)
        instance = Instance.of(Fact("R", (1, 2)), Fact("R", (2, 3)))
        with eval_engine_scope("sql"):
            rows = [
                frozenset(a.items())
                for a in satisfying_assignments(union, instance)
            ]
        assert len(rows) == len(set(rows))
        with eval_engine_scope("compiled"):
            expected = [
                frozenset(a.items())
                for a in satisfying_assignments(union, instance)
            ]
        assert set(rows) == set(expected)
        assert len(rows) == len(expected)


class TestSqlStats:
    def test_counters_flow_through_evaluation_stats(self):
        reset_evaluation_stats()
        instance = Instance.of(Fact("R", (1, 2)), Fact("R", (2, 3)))
        query = q("Q(x, z) :- R(x, y), R(y, z)")
        with eval_engine_scope("sql"):
            evaluate(query, instance)
            evaluate(query, instance)  # second call reuses the cached plan
            delta_changes(query, instance, Fact("R", (2, 3)))
        document = evaluation_stats()
        assert document["sql_plans_compiled"] == 1
        assert document["sql_plan_cache_hits"] >= 1
        assert document["sql_statements_executed"] >= 2
        assert document["sql_mirrors_built"] == 1  # cached on the instance
        assert document["sql_delta_calls"] == 1
        assert document["storage_facts_loaded"] >= 2
        assert document["storage_tables_created"] >= 1
        reset_evaluation_stats()
        assert evaluation_stats()["sql_statements_executed"] == 0


# ---------------------------------------------------------------------------
# eval_engine plumbing: session, auditor, protocol
# ---------------------------------------------------------------------------
class TestEvalEnginePlumbing:
    def test_session_pins_an_engine(self, binary_ab_schema):
        session = AnalysisSession(binary_ab_schema, eval_engine="sql")
        assert session.eval_engine == "sql"
        with session.eval_scope():
            assert evaluation_engine() == "sql"
        pinned = session.decide("S(x) :- R(x, x)", ["V(x) :- R(x, y)"])
        default = AnalysisSession(binary_ab_schema).decide(
            "S(x) :- R(x, x)", ["V(x) :- R(x, y)"]
        )
        assert pinned.secure == default.secure

    def test_session_rejects_unknown_engine(self, binary_ab_schema):
        with pytest.raises(EvaluationError):
            AnalysisSession(binary_ab_schema, eval_engine="vectorised")

    def test_auditor_reports_its_engine(self, emp_schema):
        from repro.audit import SecurityAuditor

        auditor = SecurityAuditor(emp_schema, eval_engine="sql")
        assert auditor.observability()["engines"]["evaluation"] == "sql"

    def test_protocol_carries_and_keys_on_eval_engine(self):
        from repro.bench import employee_schema
        from repro.io import schema_to_dict

        document = {
            "op": "decide",
            "schema": schema_to_dict(employee_schema()),
            "secret": "S(n, p) :- Emp(n, d, p)",
            "views": ["V(n, d) :- Emp(n, d, p)"],
        }
        plain = parse_request(document)
        assert plain.eval_engine is None
        pinned = parse_request({**document, "eval_engine": "sql"})
        assert pinned.eval_engine == "sql"
        assert session_key(plain) != session_key(pinned)
        with pytest.raises(ProtocolError):
            parse_request({**document, "eval_engine": 7})
