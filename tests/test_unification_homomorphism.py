"""Unit tests for unification, homomorphisms, containment and composition."""

import pytest

from repro.cq import (
    Atom,
    Constant,
    Variable,
    are_equivalent,
    atoms_unifiable,
    canonical_instance,
    conjoin,
    conjoin_all,
    determines,
    find_query_homomorphism,
    has_query_homomorphism,
    is_contained_in,
    match_atom_to_fact,
    q,
    queries_share_unifiable_subgoals,
    unifiable_subgoal_pairs,
    unify_atoms,
)
from repro.exceptions import QueryError
from repro.relational import Domain, Fact, RelationSchema, Schema

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestUnification:
    def test_different_relations_never_unify(self):
        assert unify_atoms(Atom("R", (X,)), Atom("S", (X,))) is None

    def test_different_arities_never_unify(self):
        assert unify_atoms(Atom("R", (X,)), Atom("R", (X, Y))) is None

    def test_constants_must_match(self):
        assert unify_atoms(Atom("R", (Constant(1),)), Atom("R", (Constant(2),))) is None
        assert unify_atoms(Atom("R", (Constant(1),)), Atom("R", (Constant(1),))) == {}

    def test_variable_binds_to_constant(self):
        result = unify_atoms(Atom("R", (X,)), Atom("R", (Constant(1),)))
        assert result == {X: Constant(1)}

    def test_transitive_bindings(self):
        # R(x, x) with R(y, 'a') forces x = y = 'a'.
        result = unify_atoms(Atom("R", (X, X)), Atom("R", (Y, Constant("a"))))
        assert result is not None
        resolved = {k: v for k, v in result.items()}
        assert Constant("a") in resolved.values()

    def test_conflicting_repeated_variable(self):
        result = unify_atoms(
            Atom("R", (X, X)), Atom("R", (Constant("a"), Constant("b")))
        )
        assert result is None

    def test_atoms_unifiable_renames_apart(self):
        # The same variable name on both sides must not accidentally link them.
        assert atoms_unifiable(Atom("R", (X, Constant(1))), Atom("R", (Constant(2), X)))

    def test_match_atom_to_fact(self):
        result = match_atom_to_fact(Atom("R", (X, Constant("a"))), Fact("R", ("z", "a")))
        assert result == {X: Constant("z")}
        assert match_atom_to_fact(Atom("R", (X, Constant("a"))), Fact("R", ("z", "b"))) is None


class TestSubgoalPairs:
    def test_disjoint_relations_share_nothing(self):
        secret = q("S() :- R1(x)")
        view = q("V() :- R2(x)")
        assert unifiable_subgoal_pairs(secret, view) == ()
        assert not queries_share_unifiable_subgoals(secret, [view])

    def test_shared_selection_constants_can_prevent_unification(self):
        secret = q("S(n) :- Emp(n, HR, p)")
        view = q("V(n) :- Emp(n, Mgmt, p)")
        assert unifiable_subgoal_pairs(secret, view) == ()

    def test_overlapping_subgoals_detected(self):
        secret = q("S(n, p) :- Emp(n, d, p)")
        view = q("V(n, d) :- Emp(n, d, p)")
        assert len(unifiable_subgoal_pairs(secret, view)) == 1


class TestHomomorphisms:
    def test_simple_containment_homomorphism(self):
        general = q("Q(x) :- R(x, y)")
        specific = q("Q(x) :- R(x, y), S(y)")
        # general is 'larger': there is a homomorphism general -> specific.
        assert has_query_homomorphism(general, specific)
        assert not has_query_homomorphism(specific, general)

    def test_head_must_be_preserved(self):
        left = q("Q(x) :- R(x, y)")
        same_up_to_renaming = q("Q(u) :- R(u, v)")
        mapping = find_query_homomorphism(left, same_up_to_renaming)
        assert mapping is not None
        assert mapping[Variable("x")] == Variable("u")
        # Projecting a *different* column is not the same query: no
        # head-preserving homomorphism exists in either direction.
        other_column = q("Q(y) :- R(x, y)")
        assert find_query_homomorphism(left, other_column) is None
        assert find_query_homomorphism(other_column, left) is None

    def test_arity_mismatch(self):
        assert find_query_homomorphism(q("Q(x) :- R(x)"), q("Q() :- R(x)")) is None

    def test_canonical_instance_freezes_variables(self):
        query = q("Q(x) :- R(x, y), S(y)")
        instance, assignment = canonical_instance(query)
        assert len(instance) == 2
        assert set(assignment) == query.variables


class TestContainment:
    def test_containment_directions(self):
        bigger = q("Q(x) :- R(x, y)")
        smaller = q("Q(x) :- R(x, y), R(y, x)")
        assert is_contained_in(smaller, bigger)
        assert not is_contained_in(bigger, smaller)

    def test_equivalence_up_to_variable_names(self):
        left = q("Q(x) :- R(x, y)")
        right = q("Q(u) :- R(u, v)")
        assert are_equivalent(left, right)

    def test_comparisons_are_rejected(self):
        with pytest.raises(QueryError):
            is_contained_in(q("Q(x) :- R(x, y), x < y"), q("Q(x) :- R(x, y)"))

    def test_determines_detects_total_disclosure(self):
        schema = Schema([RelationSchema("Emp", ("n", "d", "p"))], domain=Domain.of("a", "b"))
        views = [q("V(n, d) :- Emp(n, d, p)")]
        secret = q("S(d) :- Emp(n, d, p)")
        assert determines(views, secret, schema)

    def test_determines_rejects_partial_disclosure(self):
        schema = Schema([RelationSchema("Emp", ("n", "d", "p"))], domain=Domain.of("a", "b"))
        views = [q("V(n, d) :- Emp(n, d, p)"), q("W(d, p) :- Emp(n, d, p)")]
        secret = q("S(n, p) :- Emp(n, d, p)")
        assert not determines(views, secret, schema)


class TestConjoin:
    def test_conjoin_requires_boolean_queries(self):
        with pytest.raises(QueryError):
            conjoin(q("Q(x) :- R(x)"), q("P() :- R(x)"))

    def test_conjoin_renames_apart(self):
        left = q("A() :- R(x, 'a')")
        right = q("B() :- R(x, 'b')")
        combined = conjoin(left, right)
        assert len(combined.body) == 2
        # The two x's must not have been identified.
        assert len(combined.variables) == 2

    def test_conjoin_all(self):
        queries = [q("A() :- R(x)"), q("B() :- S(x)"), q("C() :- T(x)")]
        combined = conjoin_all(queries, name="ABC")
        assert combined.name == "ABC"
        assert len(combined.body) == 3

    def test_conjoin_all_requires_queries(self):
        with pytest.raises(QueryError):
            conjoin_all([])
