"""Tests for :class:`repro.session.live.LiveAuditSession`.

The incremental invariant under test throughout: after any sequence of
deltas, publishes and retracts, the maintained answers and verdicts
must equal what a from-scratch audit of the current state computes —
while the stats counters prove the session actually *skipped* the work
the delta classifier ruled out.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.cq import union_of
from repro.exceptions import SecurityAnalysisError
from repro.probability.kernel import ProbabilityKernel
from repro.relational import Domain, Fact, RelationSchema, Schema
from repro.session import (
    AnalysisSession,
    LiveAuditSession,
    fact_from_document,
    fact_to_document,
    may_affect,
)
from repro.storage.sqlite import SQLiteFactStore


class TestMayAffect:
    def test_unifiable_fact_may_affect(self):
        query = q("Q(y) :- R(x, y)")
        assert may_affect(query, Fact("R", ("a", "b")))

    def test_wrong_relation_cannot_affect(self):
        query = q("Q(y) :- R(x, y)")
        assert not may_affect(query, Fact("S", ("a", "b")))

    def test_wrong_arity_cannot_affect(self):
        query = q("Q(y) :- R(x, y)")
        assert not may_affect(query, Fact("R", ("a",)))

    def test_constant_mismatch_cannot_affect(self):
        query = q("Q(x) :- R(x, 'a')")
        assert not may_affect(query, Fact("R", ("b", "b")))
        assert may_affect(query, Fact("R", ("b", "a")))

    def test_union_checks_every_disjunct(self):
        union = union_of(q("Q(x) :- R(x, 'a')"), q("Q(x) :- S(x)"))
        assert may_affect(union, Fact("S", ("z",)))
        assert may_affect(union, Fact("R", ("z", "a")))
        assert not may_affect(union, Fact("R", ("z", "b")))


class TestFactDocuments:
    def test_mapping_form(self):
        fact = fact_from_document({"relation": "R", "values": [1, "a"]})
        assert fact == Fact("R", (1, "a"))

    def test_compact_form(self):
        assert fact_from_document(["R", [1, "a"]]) == Fact("R", (1, "a"))

    def test_round_trip(self):
        fact = Fact("Emp", ("alice", "HR", 1234))
        assert fact_from_document(fact_to_document(fact)) == fact

    @pytest.mark.parametrize(
        "document",
        [
            "R",
            {"relation": 3, "values": [1]},
            {"relation": "R"},
            ["R", "ab"],
            ["R", [1], "extra"],
            None,
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(SecurityAnalysisError):
            fact_from_document(document)


class TestLiveSessionDeltas:
    def test_initial_audit_and_exposure(self, binary_ab_schema, example_42_queries):
        secret, view = example_42_queries
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            facts=[Fact("R", ("a", "b"))],
        )
        document = live.verdicts()
        assert document["event"] == "snapshot"
        assert document["revision"] == 0
        assert document["fact_count"] == 1
        # Example 4.2 is not secure, and the secret currently has answers.
        assert document["secrets"]["s"]["secure"] is False
        assert document["secrets"]["s"]["exposed"] is True
        assert document["secrets"]["s"]["insecure_views"] == ["v"]

    def test_delta_flips_exposure_not_security(
        self, binary_ab_schema, example_42_queries
    ):
        secret, view = example_42_queries
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            facts=[Fact("R", ("a", "b"))],
        )
        note = live.apply_delta(removed=[Fact("R", ("a", "b"))])
        assert note["event"] == "apply-delta"
        assert note["revision"] == 1
        assert note["fact_count"] == 0
        assert note["changed"] is True
        # The static Theorem 4.5 verdict is instance-independent…
        assert note["secrets"]["s"]["secure"] is False
        # …but the secret is no longer exposed: its answer emptied out.
        assert note["secrets"]["s"]["exposed"] is False
        assert live.stats["verdict_changes"] == 1
        assert live.self_check()["consistent"]

    def test_secure_pair_never_exposed(self, binary_ab_schema, example_43_queries):
        secret, view = example_43_queries
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            facts=[Fact("R", ("a", "a"))],
        )
        note = live.apply_delta(added=[Fact("R", ("b", "a"))])
        assert note["secrets"]["s"]["secure"] is True
        assert note["secrets"]["s"]["exposed"] is False
        assert live.stats["verdict_changes"] == 0

    def test_classifier_retains_unrelated_memos(self):
        schema = Schema(
            [RelationSchema("R", ("x", "y")), RelationSchema("T", ("x",))],
            domain=Domain(["a", "b"]),
        )
        live = LiveAuditSession(
            schema,
            secrets={"sr": "S(y) :- R(x, y)", "st": "S2(x) :- T(x)"},
            views={"vr": "V(x) :- R(x, y)", "vt": "W(x) :- T(x)"},
            facts=[Fact("R", ("a", "b")), Fact("T", ("a",))],
        )
        note = live.apply_delta(added=[Fact("T", ("b",))])
        # Only the two T-queries can unify with the changed fact.
        assert note["reaudited"] == ["st", "vt"]
        assert note["retained"] == 2
        assert live.stats["queries_reaudited"] == 2
        assert live.stats["memos_retained"] == 2
        assert note["views"]["vt"]["changed"] is True
        assert note["views"]["vr"]["changed"] is False
        assert live.self_check()["consistent"]

    def test_add_wins_over_remove_of_same_fact(
        self, binary_ab_schema, example_42_queries
    ):
        # The delta contract is ``(facts - removed) | added``: removals
        # apply first, so a fact both removed and added ends up present.
        secret, view = example_42_queries
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            facts=[Fact("R", ("a", "b"))],
        )
        fact = Fact("R", ("b", "a"))
        note = live.apply_delta(added=[fact], removed=[fact])
        assert fact in live.state.facts
        assert note["fact_count"] == 2
        assert note["net_facts"] == 1
        assert live.self_check()["consistent"]

    def test_churn_stays_consistent(self, binary_abc_schema, example_42_queries):
        secret, view = example_42_queries
        live = LiveAuditSession(
            binary_abc_schema,
            secrets={"s": secret},
            views={"v": view},
        )
        domain = ["a", "b", "c"]
        revision = 0
        for step in range(12):
            fact = Fact("R", (domain[step % 3], domain[(step * 2) % 3]))
            if fact in live.state.facts:
                note = live.apply_delta(removed=[fact])
            else:
                note = live.apply_delta(added=[fact])
            revision += 1
            assert note["revision"] == revision
        assert live.stats["deltas"] == 12
        check = live.self_check()
        assert check["consistent"], check["mismatches"]


class TestPublishRetract:
    def _session(self, binary_ab_schema, example_43_queries):
        secret, view = example_43_queries
        return LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            facts=[Fact("R", ("a", "a"))],
        )

    def test_publish_insecure_view_flips_verdict(
        self, binary_ab_schema, example_43_queries
    ):
        live = self._session(binary_ab_schema, example_43_queries)
        assert live.verdicts()["secrets"]["s"]["secure"] is True
        note = live.publish("leak", "V2(x, y) :- R(x, y)")
        assert note["event"] == "publish"
        assert note["view"] == "leak"
        assert note["secrets"]["s"]["secure"] is False
        assert note["secrets"]["s"]["exposed"] is True
        assert note["secrets"]["s"]["insecure_views"] == ["leak"]
        assert live.stats["publishes"] == 1
        assert live.stats["verdict_changes"] == 1
        assert live.view_names == ("v", "leak")

    def test_retract_restores_verdict_and_drops_caches(
        self, binary_ab_schema, example_43_queries
    ):
        live = self._session(binary_ab_schema, example_43_queries)
        live.publish("leak", "V2(x, y) :- R(x, y)")
        note = live.retract("leak")
        assert note["event"] == "retract"
        assert note["secrets"]["s"]["secure"] is True
        assert note["secrets"]["s"]["exposed"] is False
        # Exactly the retracted view's fingerprints were dropped.
        assert note["crit_invalidated"] > 0
        assert live.stats["crit_invalidated"] == note["crit_invalidated"]
        assert live.session.cache_stats.invalidations == note["crit_invalidated"]
        assert live.stats["retracts"] == 1
        assert live.view_names == ("v",)

    def test_retract_unknown_view_raises(self, binary_ab_schema, example_43_queries):
        live = self._session(binary_ab_schema, example_43_queries)
        with pytest.raises(SecurityAnalysisError):
            live.retract("nope")

    def test_publish_replaces_existing_name(
        self, binary_ab_schema, example_43_queries
    ):
        live = self._session(binary_ab_schema, example_43_queries)
        live.publish("w", "V2(x, y) :- R(x, y)")
        assert live.verdicts()["secrets"]["s"]["secure"] is False
        live.publish("w", "V3(x) :- R(x, 'b')")
        assert live.view_names == ("v", "w")
        assert live.verdicts()["secrets"]["s"]["secure"] is True
        # The replacement retracted the old body first.
        assert live.stats["retracts"] == 1
        assert live.stats["publishes"] == 2

    def test_publish_invalidates_only_overlapping_kernel_memos(
        self, binary_ab_schema, half_dictionary
    ):
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": "S(y) :- R(y, 'a')"},
            facts=[Fact("R", ("a", "a"))],
            dictionary=half_dictionary,
        )
        kernel = ProbabilityKernel.shared(half_dictionary)
        kernel.joint_distribution([q("V(x) :- R(x, y)")])
        assert kernel._joint_dists
        before = kernel.stats["distributions_invalidated"]
        live.publish("w", "V2(x) :- R(x, 'b')")
        assert kernel.stats["distributions_invalidated"] > before
        assert live.stats["kernel_invalidated"] > 0
        assert not kernel._joint_dists


class TestStoreBacked:
    def test_store_mutated_in_place(self, binary_ab_schema, example_42_queries):
        secret, view = example_42_queries
        store = SQLiteFactStore.mirror([Fact("R", ("a", "b"))])
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            store=store,
        )
        assert live.state is store
        note = live.apply_delta(
            added=[Fact("R", ("b", "a"))], removed=[Fact("R", ("a", "b"))]
        )
        assert live.state is store
        assert Fact("R", ("b", "a")) in store
        assert Fact("R", ("a", "b")) not in store
        assert note["fact_count"] == 1
        assert live.snapshot()["store_backed"] is True
        assert live.self_check()["consistent"]

    def test_in_memory_snapshot_not_store_backed(
        self, binary_ab_schema, example_42_queries
    ):
        secret, view = example_42_queries
        live = LiveAuditSession(
            binary_ab_schema, secrets={"s": secret}, views={"v": view}
        )
        assert live.snapshot()["store_backed"] is False


class TestSharedSession:
    def test_shared_analysis_session_reuses_crit_cache(
        self, binary_ab_schema, example_43_queries
    ):
        secret, view = example_43_queries
        shared = AnalysisSession(binary_ab_schema)
        shared.decide(secret, view)
        misses_after_warmup = shared.cache_stats.misses
        live = LiveAuditSession(
            binary_ab_schema,
            secrets={"s": secret},
            views={"v": view},
            session=shared,
        )
        assert live.session is shared
        # The initial audit re-decides the same pair: pure cache hits.
        assert shared.cache_stats.misses == misses_after_warmup
        assert shared.cache_stats.hits > 0
