"""Unit tests for the instance-level relational algebra."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import (
    Domain,
    Fact,
    Instance,
    RelationSchema,
    Schema,
    cartesian_product,
    difference,
    natural_join,
    project,
    relation_of,
    rename,
    select,
    union,
)
from repro.relational.algebra import Relation, instance_from_relation


@pytest.fixture
def employee_relation() -> Relation:
    return Relation(
        ("name", "dept", "phone"),
        [
            ("ann", "hr", 100),
            ("bob", "hr", 200),
            ("cat", "it", 300),
        ],
    )


class TestRelation:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "b"), [(1,)])

    def test_duplicate_heading_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "a"), [])

    def test_membership_and_len(self, employee_relation):
        assert ("ann", "hr", 100) in employee_relation
        assert len(employee_relation) == 3

    def test_to_dicts(self, employee_relation):
        rows = employee_relation.to_dicts()
        assert {"name": "ann", "dept": "hr", "phone": 100} in rows


class TestOperators:
    def test_projection_removes_duplicates(self, employee_relation):
        depts = project(employee_relation, ["dept"])
        assert set(depts.rows) == {("hr",), ("it",)}

    def test_selection(self, employee_relation):
        hr = select(employee_relation, lambda row: row["dept"] == "hr")
        assert len(hr) == 2

    def test_rename(self, employee_relation):
        renamed = rename(employee_relation, {"phone": "extension"})
        assert renamed.heading == ("name", "dept", "extension")

    def test_natural_join_reassociates(self, employee_relation):
        name_dept = project(employee_relation, ["name", "dept"])
        dept_phone = project(employee_relation, ["dept", "phone"])
        joined = natural_join(name_dept, dept_phone)
        # Joining the two projections creates spurious associations — the very
        # phenomenon behind Table 1's "partial disclosure" row.
        assert ("ann", "hr", 200) in joined
        assert ("ann", "hr", 100) in joined

    def test_union_and_difference_require_same_heading(self, employee_relation):
        other = Relation(("name",), [("zed",)])
        with pytest.raises(SchemaError):
            union(employee_relation, other)
        with pytest.raises(SchemaError):
            difference(employee_relation, other)

    def test_union_and_difference(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("a",), [(2,), (3,)])
        assert set(union(left, right).rows) == {(1,), (2,), (3,)}
        assert set(difference(left, right).rows) == {(1,)}

    def test_cartesian_product(self):
        left = Relation(("a",), [(1,)])
        right = Relation(("b",), [(2,), (3,)])
        product = cartesian_product(left, right)
        assert set(product.rows) == {(1, 2), (1, 3)}

    def test_cartesian_product_rejects_clash(self):
        left = Relation(("a",), [(1,)])
        with pytest.raises(SchemaError):
            cartesian_product(left, left)


class TestInstanceBridge:
    def test_relation_of_and_back(self):
        schema = Schema(
            [RelationSchema("Emp", ("name", "dept"))], domain=Domain.of("x")
        )
        instance = Instance.of(Fact("Emp", ("ann", "hr")))
        relation = relation_of(instance, schema.relation("Emp"))
        assert ("ann", "hr") in relation
        round_tripped = instance_from_relation(schema, "Emp", relation)
        assert round_tripped == instance

    def test_instance_from_relation_checks_heading(self):
        schema = Schema(
            [RelationSchema("Emp", ("name", "dept"))], domain=Domain.of("x")
        )
        with pytest.raises(SchemaError):
            instance_from_relation(schema, "Emp", Relation(("wrong", "dept"), []))
