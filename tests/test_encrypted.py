"""Unit tests for encrypted views (Section 5.4)."""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import (
    EncryptedView,
    EncryptedViewAnswerIs,
    answerable_from_encrypted_view,
    encrypted_view_security,
)
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b", "c"))


@pytest.fixture
def dictionary(schema) -> Dictionary:
    return Dictionary.uniform(schema, Fraction(1, 2))


class TestCanonicalAnswer:
    def test_isomorphic_instances_have_equal_answers(self):
        view = EncryptedView("R")
        left = Instance.of(Fact("R", ("a", "b")), Fact("R", ("b", "c")))
        right = Instance.of(Fact("R", ("c", "a")), Fact("R", ("a", "b")))
        # right is left with the renaming a->c, b->a, c->b.
        assert view.answer(left) == view.answer(right)

    def test_non_isomorphic_instances_differ(self):
        view = EncryptedView("R")
        path = Instance.of(Fact("R", ("a", "b")), Fact("R", ("b", "c")))
        loop = Instance.of(Fact("R", ("a", "a")), Fact("R", ("b", "c")))
        assert view.answer(path) != view.answer(loop)

    def test_cardinality_is_revealed(self):
        view = EncryptedView("R")
        small = Instance.of(Fact("R", ("a", "b")))
        large = small.add(Fact("R", ("b", "c")))
        assert view.cardinality(small) == 1
        assert view.cardinality(large) == 2
        assert len(view.answer(small)) == 1
        assert len(view.answer(large)) == 2

    def test_other_relations_are_ignored(self):
        view = EncryptedView("R")
        instance = Instance.of(Fact("S", ("a",)), Fact("R", ("a", "b")))
        assert view.answer(instance) == view.answer(Instance.of(Fact("R", ("a", "b"))))

    def test_ciphertext_is_deterministic_and_salted(self):
        instance = Instance.of(Fact("R", ("a", "b")))
        assert EncryptedView("R").ciphertext(instance) == EncryptedView("R").ciphertext(instance)
        assert EncryptedView("R", salt="s1").ciphertext(instance) != EncryptedView(
            "R", salt="s2"
        ).ciphertext(instance)

    def test_answer_event(self, schema):
        view = EncryptedView("R")
        instance = Instance.of(Fact("R", ("a", "b")))
        event = EncryptedViewAnswerIs(view, view.answer(instance))
        assert event.occurs(instance)
        assert event.occurs(Instance.of(Fact("R", ("b", "c"))))  # isomorphic
        assert not event.occurs(Instance.of(Fact("R", ("a", "a"))))
        assert len(event.support(schema)) == 9


class TestSecurityAgainstEncryptedViews:
    def test_secret_on_encrypted_relation_is_never_secure(self, schema):
        report = encrypted_view_security(q("S() :- R('a', x)"), EncryptedView("R"), schema)
        assert not report.secure
        assert "cardinality" in report.reason

    def test_secret_on_other_relation_is_secure(self):
        schema = Schema(
            [RelationSchema("R", ("x", "y")), RelationSchema("Other", ("z",))],
            domain=Domain.of("a", "b"),
        )
        report = encrypted_view_security(q("S(z) :- Other(z)"), EncryptedView("R"), schema)
        assert report.secure

    def test_trivial_secret_is_secure(self, schema):
        report = encrypted_view_security(
            q("S() :- R(x, y), x != x"), EncryptedView("R"), schema
        )
        assert report.secure


class TestAnswerability:
    def test_structural_query_is_answerable(self, dictionary):
        # Q1 of Section 5.4: a join/inequality pattern is determined by the
        # isomorphism class of the relation.
        query = q("Q1() :- R(x, y), R(y, z), x != z")
        assert answerable_from_encrypted_view(query, EncryptedView("R"), dictionary)

    def test_constant_query_is_not_answerable(self, dictionary):
        # Q2 of Section 5.4 mentions the constant 'a', which encryption hides.
        query = q("Q2() :- R('a', x)")
        assert not answerable_from_encrypted_view(query, EncryptedView("R"), dictionary)

    def test_cardinality_query_is_answerable(self, dictionary):
        query = q("Q() :- R(x, y), R(z, u), x != z")
        assert answerable_from_encrypted_view(query, EncryptedView("R"), dictionary)
