"""Unit tests for critical tuples (Definition 4.4)."""

import pytest

from repro import q
from repro.core import (
    candidate_critical_facts,
    common_critical_tuples,
    critical_tuples,
    critical_tuples_naive,
    is_critical,
    is_critical_naive,
)
from repro.exceptions import IntractableAnalysisError, SecurityAnalysisError
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def binary(binary_ab_schema):
    return binary_ab_schema


class TestSimpleCases:
    def test_fact_query_critical_tuples(self, binary):
        # Q() :- R(a1, x): every tuple R(a1, *) is critical (the paper's
        # illustration below Definition 4.4).
        query = q("Q() :- R('a', x)")
        crit = critical_tuples(query, binary)
        assert crit == {Fact("R", ("a", "a")), Fact("R", ("a", "b"))}

    def test_example_4_6_every_tuple_critical(self, binary):
        view = q("V(x) :- R(x, y)")
        secret = q("S(y) :- R(x, y)")
        all_facts = {
            Fact("R", (x, y)) for x in ("a", "b") for y in ("a", "b")
        }
        assert critical_tuples(view, binary) == all_facts
        assert critical_tuples(secret, binary) == all_facts

    def test_example_4_7_disjoint_critical_sets(self, binary):
        view = q("V(x) :- R(x, 'b')")
        secret = q("S(y) :- R(y, 'a')")
        assert critical_tuples(secret, binary) == {Fact("R", ("a", "a")), Fact("R", ("b", "a"))}
        assert critical_tuples(view, binary) == {Fact("R", ("a", "b")), Fact("R", ("b", "b"))}

    def test_tuple_outside_tuple_space_is_not_critical(self, binary):
        assert not is_critical(Fact("R", ("z", "z")), q("Q() :- R(x, y)"), binary)
        assert not is_critical(Fact("S", ("a",)), q("Q() :- R(x, y)"), binary)


class TestTheorem410Example:
    """The homomorphic-image-but-not-critical example after Theorem 4.10."""

    @pytest.fixture
    def schema(self) -> Schema:
        return Schema(
            [RelationSchema("R", tuple(f"a{i}" for i in range(5)))],
            domain=Domain.of("a", "b", "c"),
        )

    @pytest.fixture
    def query(self):
        return q("Q() :- R(x, y, z, z, u), R(x, x, x, y, y)")

    def test_candidate_but_not_critical(self, schema, query):
        fact = Fact("R", ("a", "a", "b", "b", "c"))
        assert fact in candidate_critical_facts(query, schema)
        assert not is_critical(fact, query, schema)

    def test_collapsed_tuple_is_critical(self, schema, query):
        assert is_critical(Fact("R", ("a", "a", "a", "a", "a")), query, schema)


class TestNaiveAgreement:
    def test_minimal_instance_search_matches_naive(self, binary):
        queries = [
            q("Q1(x) :- R(x, y)"),
            q("Q2() :- R('a', x), R(x, x)"),
            q("Q3(x) :- R(x, x)"),
            q("Q4() :- R(x, y), x != y"),
        ]
        for query in queries:
            fast = critical_tuples(query, binary)
            naive = critical_tuples_naive(query, binary)
            assert fast == naive, f"mismatch for {query!r}"

    def test_is_critical_naive_detects_blowup(self, binary):
        with pytest.raises(IntractableAnalysisError):
            is_critical_naive(
                Fact("R", ("a", "a")), q("Q() :- R(x, y)"), binary, max_tuples=2
            )


class TestComparisons:
    def test_inequality_restricts_critical_tuples(self, binary):
        query = q("Q() :- R(x, y), x != y")
        crit = critical_tuples(query, binary)
        assert crit == {Fact("R", ("a", "b")), Fact("R", ("b", "a"))}

    def test_order_predicates(self):
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of(1, 2, 3))
        query = q("Q() :- R(x, y), x < y")
        crit = critical_tuples(query, schema)
        assert Fact("R", (1, 2)) in crit
        assert Fact("R", (2, 1)) not in crit


class TestConstraints:
    def test_key_constraint_changes_critical_tuples(self):
        schema = Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b"))
        query = q("Q() :- R(x, 'a'), R(x, 'b')")

        def one_value_per_key(instance: Instance) -> bool:
            seen = {}
            for fact in instance.relation("R"):
                if fact.values[0] in seen and seen[fact.values[0]] != fact:
                    return False
                seen[fact.values[0]] = fact
            return True

        unconstrained = critical_tuples(query, schema)
        constrained = critical_tuples(query, schema, constraint=one_value_per_key)
        assert unconstrained  # the query is satisfiable without the key
        # Under the key constraint R(x,'a') and R(x,'b') can never coexist,
        # so no tuple can change the (always-false) answer.
        assert constrained == frozenset()


class TestCommonCriticalTuples:
    def test_table_1_row_4_has_no_overlap(self, emp_schema):
        secret = q("S4(n) :- Emp(n, HR, p)")
        view = q("V4(n) :- Emp(n, Mgmt, p)")
        assert common_critical_tuples(secret, [view], emp_schema) == frozenset()

    def test_overlap_detected(self, binary):
        secret = q("S() :- R('a', -)")
        view = q("V() :- R(-, 'b')")
        common = common_critical_tuples(secret, [view], binary)
        assert common == {Fact("R", ("a", "b"))}

    def test_requires_views(self, binary):
        with pytest.raises(SecurityAnalysisError):
            common_critical_tuples(q("S() :- R(x, y)"), [], binary)

    def test_union_over_views(self, binary):
        secret = q("S(x, y) :- R(x, y)")
        views = [q("V1() :- R('a', 'a')"), q("V2() :- R('b', 'b')")]
        common = common_critical_tuples(secret, views, binary)
        assert common == {Fact("R", ("a", "a")), Fact("R", ("b", "b"))}
