"""Unit tests for query-view security decisions (Theorem 4.5 / Definition 4.1)."""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import (
    decide_security,
    independence_gap,
    is_secure,
    verify_security_probabilistically,
)
from repro.exceptions import SecurityAnalysisError
from repro.relational import Domain, Fact


class TestDecideSecurity:
    def test_example_4_2_insecure(self, binary_ab_schema, example_42_queries):
        secret, view = example_42_queries
        decision = decide_security(secret, view, binary_ab_schema)
        assert not decision.secure
        assert decision.common_critical
        assert view in decision.insecure_views
        assert "NOT secure" in decision.explain()

    def test_example_4_3_secure(self, binary_ab_schema, example_43_queries):
        secret, view = example_43_queries
        decision = decide_security(secret, view, binary_ab_schema)
        assert decision.secure
        assert decision.common_critical == frozenset()
        assert decision.insecure_views == ()
        assert "secure" in decision.explain()

    def test_table1_row_4(self, emp_schema):
        assert is_secure(
            q("S4(n) :- Emp(n, HR, p)"), q("V4(n) :- Emp(n, Mgmt, p)"), emp_schema
        )

    def test_table1_rows_1_to_3_insecure(self, emp_schema):
        assert not is_secure(q("S1(d) :- Emp(n, d, p)"), q("V1(n, d) :- Emp(n, d, p)"), emp_schema)
        assert not is_secure(
            q("S2(n, p) :- Emp(n, d, p)"),
            [q("V2(n, d) :- Emp(n, d, p)"), q("V2p(d, p) :- Emp(n, d, p)")],
            emp_schema,
        )
        assert not is_secure(q("S3(p) :- Emp(n, d, p)"), q("V3(n) :- Emp(n, d, p)"), emp_schema)

    def test_multiple_views_secure_iff_each_secure(self, emp_schema):
        secret = q("S(n) :- Emp(n, HR, p)")
        safe = q("V(n) :- Emp(n, Mgmt, p)")
        unsafe = q("W(n, d) :- Emp(n, d, p)")
        assert decide_security(secret, [safe], emp_schema).secure
        both = decide_security(secret, [safe, unsafe], emp_schema)
        assert not both.secure
        assert both.insecure_views == (unsafe,)

    def test_requires_at_least_one_view(self, binary_ab_schema):
        with pytest.raises(SecurityAnalysisError):
            decide_security(q("S() :- R(x, y)"), [], binary_ab_schema)

    def test_explicit_domain_must_be_large_enough(self, binary_ab_schema):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        with pytest.raises(SecurityAnalysisError):
            decide_security(secret, view, binary_ab_schema, domain=Domain.of("a"))

    def test_explicit_domain_accepted(self, binary_ab_schema):
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        decision = decide_security(secret, view, binary_ab_schema, domain=Domain.of("a", "b", "c"))
        assert decision.secure
        assert decision.domain == Domain.of("a", "b", "c")

    def test_disjoint_relations_are_secure(self, manufacturing):
        secret = q("S(p, c) :- Cost(p, c)")
        views = [
            q("V1(p, x, y) :- Part(p, x, y)"),
            q("V2(p, f, s) :- Product(p, f, s)"),
            q("V3(p, l) :- Labor(p, l)"),
        ]
        assert decide_security(secret, views, manufacturing).secure


class TestProbabilisticVerification:
    def test_example_4_2_fails_for_uniform_half(self, half_dictionary, example_42_queries):
        secret, view = example_42_queries
        assert not verify_security_probabilistically(secret, view, half_dictionary)

    def test_example_4_3_holds_for_uniform_half(self, half_dictionary, example_43_queries):
        secret, view = example_43_queries
        assert verify_security_probabilistically(secret, view, half_dictionary)

    def test_trivial_distribution_hides_everything(self, binary_ab_schema, example_42_queries):
        # With P(t) = 1 for every tuple the database is known, so even the
        # insecure pair of Example 4.2 satisfies Definition 4.1.
        secret, view = example_42_queries
        certain = Dictionary.uniform(binary_ab_schema, 1)
        assert verify_security_probabilistically(secret, view, certain)

    def test_section_2_1_boolean_example(self, binary_ab_schema):
        # S asserts a specific tuple; V is true whenever some tuple shares
        # the row or the column — seeing V raises the probability of S.
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('a', x), R(y, 'b')")
        assert not verify_security_probabilistically(secret, view, dictionary)

    def test_requires_views(self, half_dictionary):
        with pytest.raises(SecurityAnalysisError):
            verify_security_probabilistically(q("S() :- R(x, y)"), [], half_dictionary)

    def test_agreement_with_theorem_4_5_on_examples(
        self, binary_ab_schema, half_dictionary, example_42_queries, example_43_queries
    ):
        for secret, view in (example_42_queries, example_43_queries):
            logical = decide_security(secret, view, binary_ab_schema).secure
            probabilistic = verify_security_probabilistically(secret, view, half_dictionary)
            assert logical == probabilistic


class TestIndependenceGap:
    def test_zero_gap_for_secure_pair(self, half_dictionary, example_43_queries):
        secret, view = example_43_queries
        assert independence_gap(secret, view, half_dictionary) == 0

    def test_positive_gap_for_insecure_pair(self, half_dictionary, example_42_queries):
        secret, view = example_42_queries
        gap = independence_gap(secret, view, half_dictionary)
        assert gap > 0

    def test_gap_shrinks_with_sparser_dictionaries(self, binary_ab_schema, example_42_queries):
        secret, view = example_42_queries
        dense = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        sparse = Dictionary.uniform(binary_ab_schema, Fraction(1, 100))
        assert independence_gap(secret, view, sparse) < independence_gap(secret, view, dense)
