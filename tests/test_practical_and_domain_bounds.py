"""Unit tests for the practical algorithm and Proposition 4.9 domain bounds."""

import pytest

from repro import q
from repro.core import (
    analysis_domain,
    analysis_schema,
    decide_security,
    max_symbol_count,
    practical_security_check,
    required_domain_size,
)
from repro.exceptions import SecurityAnalysisError
from repro.relational import Domain


class TestPracticalAlgorithm:
    def test_certifies_table1_row_4(self):
        verdict = practical_security_check(
            q("S4(n) :- Emp(n, HR, p)"), q("V4(n) :- Emp(n, Mgmt, p)")
        )
        assert verdict.certainly_secure
        assert not verdict.possibly_insecure
        assert verdict.unifiable_pairs == ()
        assert "secure" in verdict.explain()

    def test_flags_overlapping_subgoals(self):
        verdict = practical_security_check(
            q("S2(n, p) :- Emp(n, d, p)"),
            [q("V2(n, d) :- Emp(n, d, p)"), q("V2p(d, p) :- Emp(n, d, p)")],
        )
        assert verdict.possibly_insecure
        assert len(verdict.unifiable_pairs) == 2
        assert "unifies" in verdict.explain()

    def test_distinct_relations_are_secure(self):
        verdict = practical_security_check(q("S() :- Secret(x)"), q("V() :- Public(x)"))
        assert verdict.certainly_secure

    def test_requires_views(self):
        with pytest.raises(SecurityAnalysisError):
            practical_security_check(q("S() :- R(x)"), [])

    def test_soundness_against_exact_decision(self, emp_schema):
        # Whenever the quick check certifies security, the exact decision must
        # agree (the quick check has false alarms but no false certificates).
        pairs = [
            (q("S(n) :- Emp(n, HR, p)"), q("V(n) :- Emp(n, Mgmt, p)")),
            (q("S(n, p) :- Emp(n, d, p)"), q("V(n, d) :- Emp(n, d, p)")),
            (q("S(p) :- Emp(n, d, p)"), q("V(n) :- Emp(n, d, p)")),
        ]
        for secret, view in pairs:
            quick = practical_security_check(secret, view)
            if quick.certainly_secure:
                assert decide_security(secret, view, emp_schema).secure


class TestDomainBounds:
    def test_max_symbol_count(self):
        queries = [q("S(y) :- R(x, y)"), q("V() :- R('a', x), R(x, 'b')")]
        # Second query: variable x plus constants a, b = 3; first query: 2.
        assert max_symbol_count(queries) == 3
        assert max_symbol_count([]) == 0

    def test_required_size_without_order_predicates(self):
        queries = [q("S(y) :- R(x, y)")]
        assert required_domain_size(queries) == 2

    def test_required_size_with_order_predicates(self):
        queries = [q("S() :- R(x, y), x < y")]
        assert required_domain_size(queries) == 2 * 3

    def test_analysis_domain_contains_query_constants(self):
        queries = [q("S(n) :- Emp(n, HR, p)"), q("V(n) :- Emp(n, Mgmt, p)")]
        domain = analysis_domain(queries)
        assert "HR" in domain
        assert "Mgmt" in domain
        assert len(domain) >= required_domain_size(queries)

    def test_analysis_domain_minimum_size(self):
        domain = analysis_domain([q("S() :- R(x)")], minimum_size=5)
        assert len(domain) == 5

    def test_numeric_order_domain_interleaves_fresh_values(self):
        queries = [q("Q() :- R(x, y), x < y, x != 3, y != 7")]
        domain = analysis_domain(queries)
        values = [v for v in domain if isinstance(v, (int, float))]
        assert 3 in values and 7 in values
        assert any(3 < v < 7 for v in values)
        assert any(v < 3 for v in values)
        assert any(v > 7 for v in values)

    def test_analysis_schema_strips_attribute_domains(self, emp_schema):
        queries = [q("S(n) :- Emp(n, d, p)")]
        stripped = analysis_schema(emp_schema, queries)
        relation = stripped.relation("Emp")
        assert relation.attribute_domains == {}
        assert len(stripped.domain) >= required_domain_size(queries)
