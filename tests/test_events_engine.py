"""Unit tests for events and the exact probability engine."""

from fractions import Fraction

import pytest

from repro import Dictionary, ExactEngine, q
from repro.exceptions import IntractableAnalysisError, ProbabilityError
from repro.probability import (
    And,
    FactAbsent,
    FactPresent,
    Not,
    Or,
    PredicateEvent,
    QueryAnswerIs,
    QueryContains,
    QueryTrue,
    query_support,
    views_answer_event,
)
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))


@pytest.fixture
def dictionary(schema) -> Dictionary:
    return Dictionary.uniform(schema, Fraction(1, 2))


@pytest.fixture
def engine(dictionary) -> ExactEngine:
    return ExactEngine(dictionary)


class TestEvents:
    def test_fact_events(self, schema):
        fact = Fact("R", ("a", "b"))
        present = FactPresent(fact)
        absent = FactAbsent(fact)
        instance = Instance.of(fact)
        assert present.occurs(instance)
        assert not absent.occurs(instance)
        assert present.support(schema) == frozenset({fact})

    def test_query_events(self, schema):
        query = q("Q(x) :- R(x, y)")
        instance = Instance.of(Fact("R", ("a", "b")))
        assert QueryAnswerIs(query, [("a",)]).occurs(instance)
        assert not QueryAnswerIs(query, [("b",)]).occurs(instance)
        assert QueryContains(query, [("a",)]).occurs(instance)
        assert QueryTrue(q("Q() :- R('a', y)")).occurs(instance)

    def test_query_support_restricted_to_mentioned_relations(self):
        schema = Schema(
            [RelationSchema("R", ("x",)), RelationSchema("S", ("y",))],
            domain=Domain.of("a", "b"),
        )
        support = query_support(q("Q(x) :- R(x)"), schema)
        assert all(fact.relation == "R" for fact in support)
        assert len(support) == 2

    def test_boolean_combinators(self, schema):
        fact_a = Fact("R", ("a", "a"))
        fact_b = Fact("R", ("b", "b"))
        instance = Instance.of(fact_a)
        conjunction = And((FactPresent(fact_a), FactAbsent(fact_b)))
        disjunction = Or((FactPresent(fact_b), FactPresent(fact_a)))
        negation = Not(FactPresent(fact_b))
        assert conjunction.occurs(instance)
        assert disjunction.occurs(instance)
        assert negation.occurs(instance)
        assert conjunction.support(schema) == frozenset({fact_a, fact_b})

    def test_operator_overloads(self, schema):
        fact = Fact("R", ("a", "a"))
        combined = FactPresent(fact) & ~FactPresent(Fact("R", ("b", "b")))
        assert combined.occurs(Instance.of(fact))
        either = FactPresent(fact) | FactPresent(Fact("R", ("b", "b")))
        assert either.occurs(Instance.of(fact))

    def test_predicate_event_without_support(self, schema):
        event = PredicateEvent(lambda instance: len(instance) == 0, "empty")
        assert event.occurs(Instance.empty())
        assert event.support(schema) is None
        assert event.describe() == "empty"

    def test_views_answer_event(self, schema):
        views = [q("V1(x) :- R(x, y)"), q("V2(y) :- R(x, y)")]
        event = views_answer_event(views, [[("a",)], [("b",)]])
        assert event.occurs(Instance.of(Fact("R", ("a", "b"))))
        assert not event.occurs(Instance.of(Fact("R", ("b", "b"))))

    def test_views_answer_event_length_mismatch(self):
        with pytest.raises(ValueError):
            views_answer_event([q("V(x) :- R(x, y)")], [])


class TestExactEngine:
    def test_single_fact_probability(self, engine):
        assert engine.probability(FactPresent(Fact("R", ("a", "a")))) == Fraction(1, 2)

    def test_independent_facts(self, engine):
        left = FactPresent(Fact("R", ("a", "a")))
        right = FactPresent(Fact("R", ("b", "b")))
        assert engine.are_independent(left, right)
        assert engine.joint_probability([left, right]) == Fraction(1, 4)

    def test_example_4_2_probabilities(self, engine):
        # P[S = {(a)}] = 3/16 and P[S = {(a)} | V = {(b)}] = 1/3.
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        s_event = QueryAnswerIs(secret, [("a",)])
        v_event = QueryAnswerIs(view, [("b",)])
        assert engine.probability(s_event) == Fraction(3, 16)
        assert engine.conditional_probability(s_event, v_event) == Fraction(1, 3)

    def test_example_4_3_probabilities(self, engine):
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        s_event = QueryAnswerIs(secret, [("a",)])
        v_event = QueryAnswerIs(view, [("b",)])
        assert engine.probability(s_event) == Fraction(1, 4)
        assert engine.conditional_probability(s_event, v_event) == Fraction(1, 4)

    def test_conditioning_on_impossible_event_raises(self, engine):
        impossible = And((FactPresent(Fact("R", ("a", "a"))), FactAbsent(Fact("R", ("a", "a")))))
        with pytest.raises(ProbabilityError):
            engine.conditional_probability(FactPresent(Fact("R", ("b", "b"))), impossible)

    def test_support_guard(self, dictionary):
        tiny_engine = ExactEngine(dictionary, max_support_size=2)
        with pytest.raises(IntractableAnalysisError):
            tiny_engine.probability(QueryTrue(q("Q() :- R(x, y)")))

    def test_answer_distribution_sums_to_one(self, engine):
        distribution = engine.answer_distribution(q("Q(x) :- R(x, y)"))
        assert sum(distribution.values()) == 1
        assert frozenset() in distribution

    def test_possible_answers_cover_all_structural_answers(self, engine):
        answers = engine.possible_answers(q("Q(x) :- R(x, y)"))
        assert frozenset() in answers
        assert frozenset({("a",), ("b",)}) in answers
        assert len(answers) == 4

    def test_joint_answer_distribution(self, engine):
        queries = [q("V(x) :- R(x, y)"), q("W(y) :- R(x, y)")]
        joint = engine.joint_answer_distribution(queries)
        assert sum(joint.values()) == 1
        # The all-empty outcome corresponds to the empty instance: (1/2)^4.
        assert joint[(frozenset(), frozenset())] == Fraction(1, 16)

    def test_probability_of_non_query_event_uses_full_space(self, engine):
        event = PredicateEvent(lambda instance: len(instance) == 0, "empty instance")
        assert engine.probability(event) == Fraction(1, 16)
