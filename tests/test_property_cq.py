"""Property-based tests (hypothesis) for the relational and query substrates."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import Dictionary, q
from repro.cq import Atom, ConjunctiveQuery, Constant, Variable, evaluate, parse_query
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema, tuple_space

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
DOMAIN_VALUES = ("a", "b", "c")
VARIABLE_NAMES = ("x", "y", "z")

binary_schema = Schema([RelationSchema("R", ("c1", "c2"))], domain=Domain(DOMAIN_VALUES))
ALL_FACTS = tuple(tuple_space(binary_schema))


def terms():
    variables = st.sampled_from([Variable(n) for n in VARIABLE_NAMES])
    constants = st.sampled_from([Constant(v) for v in DOMAIN_VALUES])
    return st.one_of(variables, constants)


def atoms():
    return st.builds(lambda t1, t2: Atom("R", (t1, t2)), terms(), terms())


@st.composite
def conjunctive_queries(draw, max_subgoals: int = 3, allow_head: bool = True):
    body = draw(st.lists(atoms(), min_size=1, max_size=max_subgoals))
    body_variables = sorted({v for atom in body for v in atom.variables})
    if allow_head and body_variables and draw(st.booleans()):
        head_size = draw(st.integers(min_value=1, max_value=len(body_variables)))
        head = tuple(body_variables[:head_size])
    else:
        head = ()
    return ConjunctiveQuery(head, body, name="Q")


def instances():
    return st.sets(st.sampled_from(ALL_FACTS), max_size=len(ALL_FACTS)).map(Instance)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
class TestInstanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(instances(), instances())
    def test_union_and_intersection_are_commutative(self, left, right):
        assert left.union(right) == right.union(left)
        assert left.intersection(right) == right.intersection(left)

    @settings(max_examples=60, deadline=None)
    @given(instances(), instances())
    def test_difference_disjoint_from_other(self, left, right):
        difference = left.difference(right)
        assert difference.intersection(right) == Instance.empty()
        assert difference.union(left.intersection(right)) == left

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_add_then_remove_roundtrip(self, instance):
        fact = ALL_FACTS[0]
        without = instance.remove(fact)
        assert without.add(fact).remove(fact) == without


class TestQueryProperties:
    @settings(max_examples=60, deadline=None)
    @given(conjunctive_queries(), instances(), instances())
    def test_monotonicity(self, query, smaller, larger):
        merged = smaller.union(larger)
        assert evaluate(query, smaller) <= evaluate(query, merged)

    @settings(max_examples=60, deadline=None)
    @given(conjunctive_queries(), instances())
    def test_evaluation_is_deterministic(self, query, instance):
        assert evaluate(query, instance) == evaluate(query, instance)

    @settings(max_examples=60, deadline=None)
    @given(conjunctive_queries())
    def test_repr_parses_back_to_the_same_query(self, query):
        reparsed = parse_query(repr(query))
        assert repr(reparsed) == repr(query)

    @settings(max_examples=60, deadline=None)
    @given(conjunctive_queries(), instances())
    def test_answers_use_only_instance_and_query_constants(self, query, instance):
        allowed = {v for fact in instance for v in fact.values} | query.constants
        for row in evaluate(query, instance):
            assert set(row) <= allowed

    @settings(max_examples=40, deadline=None)
    @given(conjunctive_queries(), instances())
    def test_rename_apart_preserves_semantics(self, query, instance):
        renamed = query.rename_apart(query.variables)
        assert evaluate(renamed, instance) == evaluate(query, instance)


PROBABILITIES = st.sampled_from(
    [Fraction(0), Fraction(1, 8), Fraction(1, 3), Fraction(1, 2), Fraction(7, 8), Fraction(1)]
)


class TestDictionaryProperties:
    @settings(max_examples=30, deadline=None)
    @given(PROBABILITIES)
    def test_instance_probabilities_sum_to_one(self, probability):
        dictionary = Dictionary.uniform(binary_schema, probability)
        from repro.relational import enumerate_instances

        total = sum(
            dictionary.instance_probability(instance)
            for instance in enumerate_instances(binary_schema)
        )
        assert total == 1

    @settings(max_examples=30, deadline=None)
    @given(instances(), PROBABILITIES)
    def test_instance_probability_in_unit_interval(self, instance, probability):
        dictionary = Dictionary.uniform(binary_schema, probability)
        value = dictionary.instance_probability(instance)
        assert 0 <= value <= 1
