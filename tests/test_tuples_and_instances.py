"""Unit tests for facts, the tuple space and instances."""

import pytest

from repro.exceptions import IntractableAnalysisError, SchemaError
from repro.relational import (
    Domain,
    Fact,
    Instance,
    RelationSchema,
    Schema,
    enumerate_instances,
    instance_space_size,
    satisfies_key_constraints,
    tuple_space,
    tuple_space_size,
)
from repro.relational.tuples import facts_of_relation, validate_fact


@pytest.fixture
def small_schema() -> Schema:
    return Schema(
        [RelationSchema("R", ("x", "y")), RelationSchema("S", ("z",))],
        domain=Domain.of("a", "b"),
    )


class TestFact:
    def test_equality_and_hash(self):
        assert Fact("R", ("a", "b")) == Fact("R", ["a", "b"])
        assert hash(Fact("R", ("a",))) == hash(Fact("R", ("a",)))

    def test_ordering_is_deterministic(self):
        facts = [Fact("R", ("b", "a")), Fact("R", ("a", "b")), Fact("Q", ("z",))]
        assert sorted(facts)[0].relation == "Q"

    def test_project_and_replace(self):
        fact = Fact("R", ("a", "b", "c"))
        assert fact.project((2, 0)) == ("c", "a")
        assert fact.replace(1, "z") == Fact("R", ("a", "z", "c"))
        assert fact[0] == "a"
        assert fact.arity == 3

    def test_validate_fact_checks_arity(self, small_schema):
        validate_fact(small_schema, Fact("R", ("a", "b")))
        with pytest.raises(SchemaError):
            validate_fact(small_schema, Fact("R", ("a",)))


class TestTupleSpace:
    def test_size_matches_enumeration(self, small_schema):
        facts = tuple_space(small_schema)
        assert len(facts) == tuple_space_size(small_schema) == 4 + 2

    def test_respects_attribute_domains(self):
        relation = RelationSchema(
            "R", ("x", "y"), {"x": Domain.of("a"), "y": Domain.of(1, 2)}
        )
        schema = Schema([relation])
        facts = tuple_space(schema)
        assert set(facts) == {Fact("R", ("a", 1)), Fact("R", ("a", 2))}

    def test_facts_of_relation_orders_deterministically(self, small_schema):
        facts = list(facts_of_relation(small_schema.relation("R"), small_schema.domain))
        assert facts[0] == Fact("R", ("a", "a"))
        assert len(facts) == 4

    def test_domain_override(self, small_schema):
        facts = tuple_space(small_schema, Domain.of("z"))
        assert set(facts) == {Fact("R", ("z", "z")), Fact("S", ("z",))}


class TestInstance:
    def test_set_semantics(self):
        instance = Instance.of(Fact("R", ("a",)), Fact("R", ("a",)))
        assert len(instance) == 1

    def test_add_remove_are_persistent(self):
        base = Instance.empty()
        extended = base.add(Fact("R", ("a",)))
        assert len(base) == 0
        assert len(extended) == 1
        assert len(extended.remove(Fact("R", ("a",)))) == 0

    def test_remove_missing_fact_is_noop(self):
        instance = Instance.of(Fact("R", ("a",)))
        assert instance.remove(Fact("R", ("b",))) == instance

    def test_relation_slicing(self):
        instance = Instance.of(Fact("R", ("a",)), Fact("S", ("b",)))
        assert instance.relation("R") == frozenset({Fact("R", ("a",))})

    def test_set_operations(self):
        left = Instance.of(Fact("R", ("a",)), Fact("R", ("b",)))
        right = Instance.of(Fact("R", ("b",)), Fact("R", ("c",)))
        assert len(left.union(right)) == 3
        assert left.intersection(right) == Instance.of(Fact("R", ("b",)))
        assert left.difference(right) == Instance.of(Fact("R", ("a",)))

    def test_subset_comparison_and_hash(self):
        small = Instance.of(Fact("R", ("a",)))
        big = small.add(Fact("R", ("b",)))
        assert small <= big
        assert hash(small) == hash(Instance.of(Fact("R", ("a",))))


class TestInstanceEnumeration:
    def test_counts_match_powerset(self, small_schema):
        instances = list(enumerate_instances(small_schema))
        assert len(instances) == 2 ** tuple_space_size(small_schema)
        assert instance_space_size(small_schema) == len(instances)

    def test_enumeration_over_explicit_facts(self, small_schema):
        facts = [Fact("S", ("a",)), Fact("S", ("b",))]
        instances = list(enumerate_instances(small_schema, over_facts=facts))
        assert len(instances) == 4

    def test_guard_against_blowup(self, small_schema):
        with pytest.raises(IntractableAnalysisError):
            list(enumerate_instances(small_schema, max_tuples=3))


class TestKeyConstraints:
    def test_satisfied_and_violated(self):
        schema = Schema(
            [RelationSchema("R", ("k", "v"), key=("k",))], domain=Domain.of("a", "b")
        )
        good = Instance.of(Fact("R", ("a", "a")), Fact("R", ("b", "a")))
        bad = Instance.of(Fact("R", ("a", "a")), Fact("R", ("a", "b")))
        assert satisfies_key_constraints(schema, good)
        assert not satisfies_key_constraints(schema, bad)

    def test_relations_without_keys_are_ignored(self):
        schema = Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a"))
        instance = Instance.of(Fact("R", ("a", "a")))
        assert satisfies_key_constraints(schema, instance)
