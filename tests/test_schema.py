"""Unit tests for relation and database schemas (repro.relational.schema)."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import Domain, RelationSchema, Schema


class TestRelationSchema:
    def test_basic_properties(self):
        relation = RelationSchema("Emp", ("name", "dept", "phone"))
        assert relation.arity == 3
        assert relation.attribute_index("dept") == 1

    def test_unknown_attribute_raises(self):
        relation = RelationSchema("Emp", ("name",))
        with pytest.raises(SchemaError):
            relation.attribute_index("phone")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_key_positions(self):
        relation = RelationSchema("R", ("a", "b", "c"), key=("c", "a"))
        assert relation.key_positions() == (2, 0)

    def test_key_must_use_declared_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a",), key=("b",))

    def test_attribute_domain_must_reference_known_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a",), {"b": Domain.of(1)})

    def test_domain_for_falls_back_to_default(self):
        default = Domain.of("x", "y")
        relation = RelationSchema("R", ("a", "b"), {"a": Domain.of(1, 2)})
        assert list(relation.domain_for("a", default)) == [1, 2]
        assert relation.domain_for("b", default) is default

    def test_position_domains_in_order(self):
        default = Domain.of("x")
        relation = RelationSchema("R", ("a", "b"), {"b": Domain.of(1)})
        domains = relation.position_domains(default)
        assert list(domains[0]) == ["x"]
        assert list(domains[1]) == [1]


class TestSchema:
    def test_requires_at_least_one_relation(self):
        with pytest.raises(SchemaError):
            Schema([], domain=Domain.of("a"))

    def test_duplicate_relation_names_rejected(self):
        r = RelationSchema("R", ("a",))
        with pytest.raises(SchemaError):
            Schema([r, r], domain=Domain.of("a"))

    def test_lookup_and_containment(self):
        schema = Schema([RelationSchema("R", ("a",))], domain=Domain.of("x"))
        assert "R" in schema
        assert schema.relation("R").arity == 1
        with pytest.raises(SchemaError):
            schema.relation("missing")

    def test_global_domain_derived_from_attribute_domains(self):
        relation = RelationSchema(
            "R", ("a", "b"), {"a": Domain.of(1, 2), "b": Domain.of(2, 3)}
        )
        schema = Schema([relation])
        assert set(schema.domain) == {1, 2, 3}

    def test_missing_domain_and_attribute_domains_raises(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("R", ("a",))])

    def test_with_domain_replaces_global_domain(self):
        schema = Schema([RelationSchema("R", ("a",))], domain=Domain.of("x"))
        replaced = schema.with_domain(Domain.of("y", "z"))
        assert list(replaced.domain) == ["y", "z"]
        assert list(schema.domain) == ["x"]

    def test_with_relation_adds_relation(self):
        schema = Schema([RelationSchema("R", ("a",))], domain=Domain.of("x"))
        extended = schema.with_relation(RelationSchema("S", ("b", "c")))
        assert "S" in extended
        assert len(extended) == 2
        assert len(schema) == 1

    def test_iteration_order_is_declaration_order(self):
        schema = Schema(
            [RelationSchema("B", ("x",)), RelationSchema("A", ("y",))],
            domain=Domain.of(1),
        )
        assert [r.name for r in schema] == ["B", "A"]
