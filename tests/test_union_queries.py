"""Tests for the union-of-conjunctive-queries (UCQ) extension.

The paper proves Theorems 4.5/4.8 for monotone queries in general;
this extension exercises them beyond plain conjunctive queries.
"""

from fractions import Fraction

import pytest

from repro import Dictionary, q, union_of
from repro.core import (
    critical_tuples,
    critical_tuples_naive,
    decide_security,
    positive_leakage,
    practical_security_check,
    verify_security_probabilistically,
)
from repro.cq import UnionQuery, evaluate, evaluate_boolean
from repro.exceptions import QueryError
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))


@pytest.fixture
def emp_union_schema(emp_schema):
    return emp_schema


class TestConstruction:
    def test_requires_disjuncts(self):
        with pytest.raises(QueryError):
            UnionQuery([])

    def test_requires_equal_arity(self):
        with pytest.raises(QueryError):
            union_of(q("A(x) :- R(x, y)"), q("B() :- R(x, y)"))

    def test_disjuncts_are_renamed_apart(self):
        union = union_of(q("A(x) :- R(x, 'a')"), q("B(x) :- R(x, 'b')"))
        first, second = union.disjuncts
        assert not (first.variables & second.variables)

    def test_aggregate_properties(self):
        union = union_of(q("A(x) :- R(x, 'a')"), q("B(y) :- S(y, z), y < z"))
        assert union.arity == 1
        assert union.relation_names == {"R", "S"}
        assert union.constants == {"a"}
        assert union.has_order_predicates
        assert union.is_monotone
        assert union.symbol_count() == 2
        assert len(union.body) == 2
        assert "UNION" in repr(union)

    def test_with_name_and_rename_apart(self):
        union = union_of(q("A(x) :- R(x, y)"), q("B(x) :- R(x, x)"), name="U")
        assert union.with_name("W").name == "W"
        renamed = union.rename_apart(union.variables)
        assert not (renamed.variables & union.variables)


class TestEvaluation:
    def test_union_semantics(self):
        union = union_of(q("A(x) :- R(x, 'a')"), q("B(x) :- R('b', x)"))
        instance = Instance.of(Fact("R", ("a", "a")), Fact("R", ("b", "c")))
        assert evaluate(union, instance) == frozenset({("a",), ("c",)})

    def test_boolean_union(self):
        union = union_of(q("A() :- R('a', 'a')"), q("B() :- R('b', 'b')"))
        assert evaluate_boolean(union, Instance.of(Fact("R", ("b", "b"))))
        assert not evaluate_boolean(union, Instance.of(Fact("R", ("a", "b"))))

    def test_monotone(self):
        union = union_of(q("A(x) :- R(x, 'a')"), q("B(x) :- R('b', x)"))
        small = Instance.of(Fact("R", ("a", "a")))
        large = small.add(Fact("R", ("b", "b")))
        assert evaluate(union, small) <= evaluate(union, large)


class TestCriticalTuples:
    def test_union_critical_tuples_are_union_of_disjunct_ones_here(self, schema):
        left = q("A() :- R('a', 'a')")
        right = q("B() :- R('b', 'b')")
        union = union_of(left, right)
        assert critical_tuples(union, schema) == (
            critical_tuples(left, schema) | critical_tuples(right, schema)
        )

    def test_redundant_disjunct_contributes_nothing(self, schema):
        # B is subsumed by A (A is more general), so the union is equivalent
        # to A alone and B's extra "witnesses" must not create new critical
        # tuples beyond A's.
        general = q("A() :- R(x, y)")
        specific = q("B() :- R('a', 'a')")
        union = union_of(general, specific)
        assert critical_tuples(union, schema) == critical_tuples(general, schema)

    def test_agrees_with_naive_enumeration(self, schema):
        union = union_of(q("A() :- R('a', x)"), q("B() :- R(x, x)"))
        assert critical_tuples(union, schema) == critical_tuples_naive(union, schema)

    def test_union_can_mask_a_tuple(self, schema):
        # In A OR B where B is 'some tuple exists in row a' and A is the
        # specific tuple R(a,b): R(a,b) is critical for A alone, but the
        # union is equivalent to B, for which... R(a,b) is still critical.
        # Use instead a disjunct that swallows the other entirely:
        union = union_of(q("A() :- R('a', 'b'), R('a', 'a')"), q("B() :- R('a', 'a')"))
        # The union is equivalent to B alone, so only B's tuple is critical.
        assert critical_tuples(union, schema) == {Fact("R", ("a", "a"))}


class TestSecurityWithUnions:
    def test_theorem_4_5_holds_for_unions(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 2))
        secret = union_of(q("A() :- R('a', 'a')"), q("B() :- R('a', 'b')"), name="S")
        secure_view = union_of(q("C() :- R('b', 'a')"), q("D() :- R('b', 'b')"), name="V")
        leaky_view = union_of(q("C() :- R('b', 'a')"), q("D() :- R('a', 'b')"), name="W")

        assert not (critical_tuples(secret, schema) & critical_tuples(secure_view, schema))
        assert verify_security_probabilistically(secret, secure_view, dictionary)

        assert critical_tuples(secret, schema) & critical_tuples(leaky_view, schema)
        assert not verify_security_probabilistically(secret, leaky_view, dictionary)

    def test_decide_security_accepts_unions(self, emp_union_schema):
        secret = union_of(
            q("S1(n) :- Emp(n, HR, p)"), q("S2(n) :- Emp(n, Payroll, p)"), name="Sensitive"
        )
        safe_view = q("V(n) :- Emp(n, Mgmt, p)")
        leaky_view = q("W(n) :- Emp(n, Payroll, p)")
        assert decide_security(secret, safe_view, emp_union_schema).secure
        assert not decide_security(secret, leaky_view, emp_union_schema).secure

    def test_practical_check_accepts_unions(self, emp_union_schema):
        secret = union_of(
            q("S1(n) :- Emp(n, HR, p)"), q("S2(n) :- Emp(n, Payroll, p)"), name="Sensitive"
        )
        assert practical_security_check(secret, q("V(n) :- Emp(n, Mgmt, p)")).certainly_secure
        assert practical_security_check(secret, q("W(n, d) :- Emp(n, d, p)")).possibly_insecure

    def test_leakage_accepts_unions(self, schema):
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        secret = union_of(q("A(x) :- R(x, 'a')"), q("B(x) :- R(x, 'b')"), name="S")
        view = q("V(x) :- R('a', x)")
        result = positive_leakage(secret, view, dictionary)
        assert result.leakage > 0

    def test_auditor_accepts_union_queries(self, emp_union_schema):
        from repro import SecurityAuditor

        auditor = SecurityAuditor(emp_union_schema)
        secret = union_of(
            q("S1(n) :- Emp(n, HR, p)"), q("S2(n) :- Emp(n, Payroll, p)"), name="Sensitive"
        )
        decision = auditor.decide(secret, "V(n) :- Emp(n, Mgmt, p)")
        assert decision.secure
        assessment = auditor.classify(secret, "W(n) :- Emp(n, Payroll, p)")
        assert not assessment.secure

    def test_boolean_specialisation(self):
        union = union_of(q("A(x) :- R(x, 'a')"), q("B(x) :- R('b', x)"), name="U")
        spec = union.boolean_specialisation(("a",))
        assert spec.is_boolean
        assert len(spec.disjuncts) == 2
        assert evaluate_boolean(spec, Instance.of(Fact("R", ("a", "a"))))
        assert evaluate_boolean(spec, Instance.of(Fact("R", ("b", "a"))))
        assert not evaluate_boolean(spec, Instance.of(Fact("R", ("b", "b"))))
