"""Unit tests for the session-based analysis API.

Covers compilation (canonical forms, fingerprints), decision/batch
parity with the legacy free functions on the suite's standard cases,
cache hit/miss/eviction accounting, the engine registry, the publishing
plan batch audit and the uniform query-type validation.
"""

from fractions import Fraction

import pytest

from repro import (
    AnalysisSession,
    Dictionary,
    PublishingPlan,
    q,
    union_of,
)
from repro.core import (
    CardinalityConstraintKnowledge,
    KeyConstraintKnowledge,
    TupleStatusKnowledge,
    analyse_collusion,
    classify_practical_security,
    decide_security,
    decide_with_knowledge,
    positive_leakage,
)
from repro.core.critical import critical_tuples
from repro.exceptions import SecurityAnalysisError
from repro.relational import Domain, Fact
from repro.session import (
    CriticalTupleCache,
    available_engines,
    canonical_query_key,
    create_engine,
    query_fingerprint,
)
from repro.session.default import default_session, reset_default_sessions


@pytest.fixture
def emp_session(emp_schema) -> AnalysisSession:
    return AnalysisSession(emp_schema)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
class TestCompile:
    def test_compile_parses_strings(self, emp_session):
        compiled = emp_session.compile("S(n) :- Emp(n, HR, p)")
        assert compiled.name == "S"
        assert compiled.arity == 1
        assert not compiled.is_boolean

    def test_alpha_equivalent_queries_share_one_compiled_object(self, emp_session):
        first = emp_session.compile("V(x) :- Emp(x, HR, y)")
        second = emp_session.compile("W(n) :- Emp(n, HR, p)")
        assert first is second
        assert first.canonical_key == second.canonical_key

    def test_fingerprint_ignores_names_and_variable_spellings(self):
        assert query_fingerprint(q("V(x) :- R(x, y)")) == query_fingerprint(
            q("Other(a) :- R(a, b)")
        )
        assert query_fingerprint(q("V(x) :- R(x, y)")) != query_fingerprint(
            q("V(y) :- R(x, y)")
        )

    def test_canonical_key_distinguishes_constants_from_variables(self):
        assert canonical_query_key(q("V(x) :- R(x, 'a')")) != canonical_query_key(
            q("V(x) :- R(x, y)")
        )
        # Same constant spelled as int vs. string stays distinct.
        assert canonical_query_key(q("V(x) :- R(x, 1)")) != canonical_query_key(
            q("V(x) :- R(x, '1')")
        )

    def test_union_canonical_key_ignores_disjunct_order(self):
        left = union_of(q("V(x) :- R(x, 'a')"), q("V(x) :- R(x, 'b')"))
        right = union_of(q("V(x) :- R(x, 'b')"), q("V(x) :- R(x, 'a')"))
        assert canonical_query_key(left) == canonical_query_key(right)

    def test_compiled_critical_tuples_match_direct_computation(
        self, binary_ab_schema
    ):
        session = AnalysisSession(binary_ab_schema)
        compiled = session.compile("V(x) :- R(x, y)")
        domain = Domain.of("a", "b")
        direct = critical_tuples(q("V(x) :- R(x, y)"), binary_ab_schema, domain)
        assert compiled.critical_tuples(domain) == direct
        # The second call is answered from the cache.
        before = session.cache_stats
        compiled.critical_tuples(domain)
        after = session.cache_stats
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_compile_rejects_unsupported_types(self, emp_session):
        with pytest.raises(SecurityAnalysisError, match="ConjunctiveQuery"):
            emp_session.compile(42)


# ---------------------------------------------------------------------------
# Parity with the legacy free functions
# ---------------------------------------------------------------------------
SECURITY_CASES = [
    # (secret, views, expected_secure) — the decision cases of test_security.py
    ("S4(n) :- Emp(n, HR, p)", ["V4(n) :- Emp(n, Mgmt, p)"], True),
    ("S1(d) :- Emp(n, d, p)", ["V1(n, d) :- Emp(n, d, p)"], False),
    (
        "S2(n, p) :- Emp(n, d, p)",
        ["V2(n, d) :- Emp(n, d, p)", "V2p(d, p) :- Emp(n, d, p)"],
        False,
    ),
    ("S3(p) :- Emp(n, d, p)", ["V3(n) :- Emp(n, d, p)"], False),
    (
        "S(n) :- Emp(n, HR, p)",
        ["V(n) :- Emp(n, Mgmt, p)", "W(n, d) :- Emp(n, d, p)"],
        False,
    ),
]


class TestLegacyParity:
    @pytest.mark.parametrize("secret,views,expected", SECURITY_CASES)
    def test_decide_matches_decide_security(self, emp_schema, secret, views, expected):
        session = AnalysisSession(emp_schema)
        legacy = decide_security(q(secret), [q(v) for v in views], emp_schema)
        result = session.decide(secret, views)
        assert result.secure is expected
        assert result.decision.secure == legacy.secure
        assert result.decision.common_critical == legacy.common_critical

    def test_decide_example_42_43(
        self, binary_ab_schema, example_42_queries, example_43_queries
    ):
        session = AnalysisSession(binary_ab_schema)
        for secret, view in (example_42_queries, example_43_queries):
            legacy = decide_security(secret, view, binary_ab_schema)
            assert session.decide(secret, view).secure == legacy.secure

    def test_collusion_matches_analyse_collusion(self, emp_schema):
        secret = q("S(n, p) :- Emp(n, HR, p)")
        views = {
            "bob": q("Vb(n, d) :- Emp(n, d, p)"),
            "carol": q("Vc(n) :- Emp(n, Mgmt, p)"),
        }
        legacy = analyse_collusion(secret, views, emp_schema)
        session = AnalysisSession(emp_schema)
        result = session.collusion(secret, views)
        assert result.verdict == legacy.secure_overall
        assert result.report.insecure_recipients == legacy.insecure_recipients
        assert result.report.recipients == ("bob", "carol")
        assert [d.secure for d in result.report.per_view] == [
            d.secure for d in legacy.per_view
        ]

    def test_collusion_all_secure_case(self, manufacturing):
        secret = q("S(p, c) :- Cost(p, c)")
        views = {
            "supplier": q("V1(p, x, y) :- Part(p, x, y)"),
            "retailer": q("V2(p, f, s) :- Product(p, f, s)"),
            "tax": q("V3(p, l) :- Labor(p, l)"),
        }
        legacy = analyse_collusion(secret, views, manufacturing)
        result = AnalysisSession(manufacturing).collusion(secret, views)
        assert result.verdict is True
        assert result.verdict == legacy.secure_overall

    def test_with_knowledge_matches_legacy(self, emp_schema):
        secret = q("S(p) :- Emp('Ann', HR, p)")
        view = q("V(n) :- Emp(n, d, p)")
        session = AnalysisSession(emp_schema)
        for knowledge in (
            KeyConstraintKnowledge({"Emp": (0,)}),
            CardinalityConstraintKnowledge("at_most", 3),
            TupleStatusKnowledge(present=[Fact("Emp", ("Ann", "HR", "p0"))]),
        ):
            legacy = decide_with_knowledge(secret, view, knowledge, emp_schema)
            result = session.with_knowledge(secret, view, knowledge)
            assert result.decision.secure == legacy.secure
            assert result.decision.method == legacy.method
            assert result.conclusive == legacy.conclusive

    def test_leakage_matches_positive_leakage(self, binary_ab_schema):
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('a', x)")
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        legacy = positive_leakage(secret, view, dictionary)
        session = AnalysisSession(binary_ab_schema, dictionary=dictionary)
        result = session.leakage(secret, view)
        assert result.measurement.leakage == legacy.leakage
        assert result.verdict == (legacy.leakage == 0)

    def test_practical_matches_classify_practical_security(self, binary_ab_schema):
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('a', x)")
        legacy = classify_practical_security(secret, view, binary_ab_schema)
        result = AnalysisSession(binary_ab_schema).practical(secret, view)
        assert result.report.level == legacy.level
        assert result.report.limit == pytest.approx(legacy.limit)

    def test_quick_check_wraps_practical_verdict(self, emp_session):
        certified = emp_session.quick_check(
            "S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)"
        )
        # Distinct constants: no subgoal pair unifies — a sound certificate.
        assert certified.verdict is True
        # When subgoals do unify the check cannot certify the pair, so the
        # verdict is inconclusive rather than insecure.
        flagged = emp_session.quick_check(
            "S(n) :- Emp(n, d, p)", "V(n) :- Emp(n, Mgmt, p)"
        )
        assert flagged.verdict is None
        assert flagged.check.possibly_insecure
        with pytest.raises(SecurityAnalysisError):
            flagged.secure


# ---------------------------------------------------------------------------
# Shims: the legacy entry points run through the default session
# ---------------------------------------------------------------------------
class TestDefaultSessionShims:
    def test_decide_security_uses_shared_default_cache(self, emp_schema):
        reset_default_sessions()
        secret = q("S(n) :- Emp(n, HR, p)")
        view = q("V(n) :- Emp(n, Mgmt, p)")
        decide_security(secret, view, emp_schema)
        session = default_session(emp_schema)
        first = session.cache_stats
        assert first.misses > 0
        decide_security(secret, view, emp_schema)
        second = session.cache_stats
        assert second.misses == first.misses
        assert second.hits > first.hits
        reset_default_sessions()

    def test_default_sessions_are_reused_per_schema(self, emp_schema):
        reset_default_sessions()
        assert default_session(emp_schema) is default_session(emp_schema)
        reset_default_sessions()

    def test_legacy_error_behaviour_is_preserved(self, binary_ab_schema):
        with pytest.raises(SecurityAnalysisError):
            decide_security(q("S() :- R(x, y)"), [], binary_ab_schema)
        with pytest.raises(SecurityAnalysisError):
            decide_security(
                q("S(y) :- R(x, y)"),
                q("V(x) :- R(x, y)"),
                binary_ab_schema,
                domain=Domain.of("a"),
            )

    def test_decide_security_rejects_non_query_secret(self, emp_schema):
        with pytest.raises(SecurityAnalysisError, match="secret must be"):
            decide_security(12345, q("V(n) :- Emp(n, Mgmt, p)"), emp_schema)

    def test_decide_security_rejects_non_query_view(self, emp_schema):
        with pytest.raises(SecurityAnalysisError, match="view must be"):
            decide_security(q("S(n) :- Emp(n, HR, p)"), [object()], emp_schema)

    def test_session_validates_types_uniformly(self, emp_session):
        with pytest.raises(SecurityAnalysisError, match="secret must be"):
            emp_session.decide(None, "V(n) :- Emp(n, Mgmt, p)")
        with pytest.raises(SecurityAnalysisError, match="view must be"):
            emp_session.decide("S(n) :- Emp(n, HR, p)", 3.14)

    def test_union_secret_still_supported(self, emp_schema):
        union_secret = union_of(
            q("S(n) :- Emp(n, HR, p)"), q("S(n) :- Emp(n, Mgmt, p)")
        )
        decision = decide_security(
            union_secret, q("V(d) :- Emp(n, d, p)"), emp_schema
        )
        assert decision.secure is False


# ---------------------------------------------------------------------------
# Cache accounting and eviction
# ---------------------------------------------------------------------------
class TestCacheAccounting:
    def test_collusion_computes_each_crit_once(self, emp_schema):
        session = AnalysisSession(emp_schema)
        secret = q("S(n, p) :- Emp(n, HR, p)")
        views = [q(f"V{i}(n) :- Emp(n, D{i}, p)") for i in range(4)]
        result = session.collusion(secret, views)
        # 1 secret + 4 views computed once; 3 further secret lookups hit.
        assert result.cache_used.misses == 5
        assert result.cache_used.hits == 3

    def test_repeat_analysis_is_all_hits(self, emp_schema):
        session = AnalysisSession(emp_schema)
        first = session.decide("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")
        second = session.decide("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")
        assert first.cache_used.misses == 2
        assert second.cache_used.misses == 0
        assert second.cache_used.hits == 2
        assert second.decision.secure == first.decision.secure

    def test_results_carry_timing(self, emp_session):
        result = emp_session.decide("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")
        assert result.elapsed_seconds >= 0.0
        assert result.kind == "decide"

    def test_lru_eviction(self):
        cache = CriticalTupleCache(maxsize=2)
        cache.get_or_compute("a", lambda: frozenset({1}))
        cache.get_or_compute("b", lambda: frozenset({2}))
        cache.get_or_compute("a", lambda: frozenset({1}))  # refresh "a"
        cache.get_or_compute("c", lambda: frozenset({3}))  # evicts "b"
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2
        assert stats.hits == 1
        assert stats.misses == 3

    def test_cache_rejects_nonpositive_size(self):
        with pytest.raises(SecurityAnalysisError):
            CriticalTupleCache(maxsize=0)

    def test_session_cache_eviction_keeps_answers_correct(self, emp_schema):
        session = AnalysisSession(emp_schema, cache_size=2)
        verdicts = [
            session.decide("S(n) :- Emp(n, HR, p)", f"V{i}(n) :- Emp(n, D{i}, p)").secure
            for i in range(5)
        ]
        assert session.cache_stats.evictions > 0
        fresh = AnalysisSession(emp_schema)
        assert verdicts == [
            fresh.decide("S(n) :- Emp(n, HR, p)", f"V{i}(n) :- Emp(n, D{i}, p)").secure
            for i in range(5)
        ]

    def test_cache_stats_delta(self):
        cache = CriticalTupleCache(maxsize=4)
        cache.get_or_compute("x", frozenset)
        before = cache.stats()
        cache.get_or_compute("x", frozenset)
        cache.get_or_compute("y", frozenset)
        delta = cache.stats().delta(before)
        assert delta.hits == 1
        assert delta.misses == 1
        assert 0 < delta.hit_rate < 1

    def test_concurrent_access_is_safe(self):
        # Regression guard for the audit service, whose worker pool shares
        # one session (hence one cache) across threads: hammer get/put,
        # eviction, stats and clear from many threads and verify the
        # counters stay exact and the LRU bound holds.
        import threading

        cache = CriticalTupleCache(maxsize=16)
        errors = []
        barrier = threading.Barrier(8)

        def _hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=10)
                for step in range(400):
                    key = (worker + step) % 40  # overlapping keys force races
                    value = cache.get_or_compute(key, lambda k=key: frozenset({k}))
                    assert value == frozenset({key})
                    cache.get(key)
                    assert len(cache) <= 16
                    stats = cache.stats()
                    assert stats.size <= stats.maxsize
                    if step % 97 == 0:
                        cache.clear()
            except Exception as error:  # pragma: no cover - the assertion below
                errors.append(error)

        threads = [threading.Thread(target=_hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"concurrent cache access failed: {errors[:3]}"
        stats = cache.stats()
        # every lookup is accounted exactly once even under contention
        assert stats.lookups == stats.hits + stats.misses
        assert stats.lookups == 8 * 400
        assert stats.size <= stats.maxsize

    def test_concurrent_sessions_share_cache_coherently(self, emp_schema):
        # Many threads running the same decisions on one session must agree
        # with a single-threaded session on every verdict.
        import threading

        session = AnalysisSession(emp_schema)
        reference = AnalysisSession(emp_schema)
        pairs = [
            ("S(n) :- Emp(n, HR, p)", f"V{i}(n) :- Emp(n, D{i % 3}, p)")
            for i in range(6)
        ]
        expected = [reference.decide(s, v).secure for s, v in pairs]
        outcomes = [[None] * len(pairs) for _ in range(6)]
        errors = []

        def _worker(slot: int) -> None:
            try:
                for index, (secret, view) in enumerate(pairs):
                    outcomes[slot][index] = session.decide(secret, view).secure
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=_worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert all(row == expected for row in outcomes)


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------
class TestEngineRegistry:
    def test_known_engines_listed(self):
        assert "exact" in available_engines()
        assert "sampling" in available_engines()

    def test_unknown_engine_raises_with_available_names(self, emp_schema):
        with pytest.raises(SecurityAnalysisError, match="available engines"):
            AnalysisSession(emp_schema, engine="quantum")
        with pytest.raises(SecurityAnalysisError, match="quantum"):
            create_engine("quantum")

    def test_exact_engine_verifies_examples(
        self, binary_ab_schema, half_dictionary, example_42_queries, example_43_queries
    ):
        session = AnalysisSession(
            binary_ab_schema, dictionary=half_dictionary, engine="exact"
        )
        insecure = session.verify(*example_42_queries)
        secure = session.verify(*example_43_queries)
        assert insecure.verdict is False
        assert secure.verdict is True
        assert insecure.engine == "exact"

    def test_sampling_engine_detects_strong_correlation(
        self, binary_ab_schema, half_dictionary, example_42_queries, example_43_queries
    ):
        session = AnalysisSession(
            binary_ab_schema, dictionary=half_dictionary, engine="sampling"
        )
        assert session.verify(*example_42_queries).verdict is False
        assert session.verify(*example_43_queries).verdict is True

    def test_verify_requires_dictionary(self, emp_session):
        with pytest.raises(SecurityAnalysisError, match="dictionary"):
            emp_session.verify("S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)")


# ---------------------------------------------------------------------------
# Publishing-plan batch audits
# ---------------------------------------------------------------------------
class TestAuditPlan:
    def test_batch_parity_with_legacy_per_pair_decisions(self, emp_schema):
        secrets = {
            "hr_phones": "S1(n, p) :- Emp(n, HR, p)",
            "all_pairs": "S2(n, p) :- Emp(n, d, p)",
        }
        views = {
            "bob": "V(n, d) :- Emp(n, d, p)",
            "carol": "W(n) :- Emp(n, Mgmt, p)",
        }
        session = AnalysisSession(emp_schema)
        result = session.audit_plan(PublishingPlan(secrets=secrets, views=views))
        for entry in result.entries:
            legacy = decide_security(
                q(secrets[entry.secret_name]), q(views[entry.recipient]), emp_schema
            )
            assert entry.secure == legacy.secure
        assert result.verdict is False
        assert {(e.secret_name, e.recipient) for e in result.violations} == {
            ("hr_phones", "bob"),
            ("all_pairs", "bob"),
            ("all_pairs", "carol"),
        }

    def test_coalition_queries_follow_theorem_4_5(self, emp_schema):
        result = AnalysisSession(emp_schema).audit_plan(
            PublishingPlan(
                secrets={"s": "S(n, p) :- Emp(n, HR, p)"},
                views={
                    "bob": "V(n, d) :- Emp(n, d, p)",
                    "carol": "W(n) :- Emp(n, Mgmt, p)",
                },
            )
        )
        assert result.coalition_is_secure("s", ["carol"])
        assert not result.coalition_is_secure("s", ["bob", "carol"])
        assert result.violating_coalitions("s") == (("bob",),)
        with pytest.raises(SecurityAnalysisError):
            result.coalition_is_secure("s", ["nobody"])
        # An unknown secret must raise, not report "secure" vacuously.
        with pytest.raises(SecurityAnalysisError, match="unknown secret"):
            result.coalition_is_secure("typo", ["bob"])
        with pytest.raises(SecurityAnalysisError, match="unknown secret"):
            result.violating_coalitions("typo")

    def test_plan_entry_lookup_and_render(self, emp_schema):
        result = AnalysisSession(emp_schema).audit_plan(
            PublishingPlan(
                secrets={"s": "S(n) :- Emp(n, HR, p)"},
                views={"bob": "V(n) :- Emp(n, Mgmt, p)"},
            )
        )
        assert result.entry("s", "bob").secure is True
        assert "secure against every coalition" in result.render()
        with pytest.raises(SecurityAnalysisError):
            result.entry("s", "nobody")

    def test_plan_requires_secrets_and_views(self):
        with pytest.raises(SecurityAnalysisError):
            PublishingPlan(secrets={}, views={"bob": "V(x) :- R(x, y)"})
        with pytest.raises(SecurityAnalysisError):
            PublishingPlan(secrets=["S(x) :- R(x, y)"], views=[])

    def test_plan_sequences_get_auto_names(self, emp_schema):
        plan = PublishingPlan(
            secrets=["S(n) :- Emp(n, HR, p)"],
            views=["V(n) :- Emp(n, Mgmt, p)", "W(d) :- Emp(n, d, p)"],
        )
        assert plan.secret_names == ("secret1",)
        assert plan.recipients == ("user1", "user2")
        result = AnalysisSession(emp_schema).audit_plan(plan)
        assert result.recipients == ("user1", "user2")

    def test_audit_plan_rejects_non_plan(self, emp_session):
        with pytest.raises(SecurityAnalysisError, match="PublishingPlan"):
            emp_session.audit_plan({"secrets": {}, "views": {}})


class TestAuditorSessionConsistency:
    def test_auditor_rejects_session_over_a_different_schema(
        self, emp_schema, binary_ab_schema
    ):
        from repro import SecurityAuditor

        with pytest.raises(SecurityAnalysisError, match="different schema"):
            SecurityAuditor(emp_schema, session=AnalysisSession(binary_ab_schema))

    def test_auditor_accepts_equivalent_schema_session(self, emp_schema):
        from repro import SecurityAuditor

        session = AnalysisSession(emp_schema)
        auditor = SecurityAuditor(emp_schema, session=session)
        assert auditor.session is session
        assert auditor.decide(
            "S(n) :- Emp(n, HR, p)", "V(n) :- Emp(n, Mgmt, p)"
        ).secure
