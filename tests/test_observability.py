"""Tests for the tracing and telemetry subsystem (:mod:`repro.obs`).

The propagation invariants the PR promises:

* the ``trace`` envelope field never enters request fingerprints, so a
  traced and an untraced copy of the same request coalesce;
* with tracing off, response envelopes carry no observability fields at
  all — the wire format is exactly the pre-tracing one;
* coalesced followers and result-cache hits link to the leader's trace;
* span trees survive a worker crash and restart (the fleet keeps
  returning full distributed waterfalls afterwards);
* the merged ``traces``/``metrics`` service operations degrade to
  ``partial`` documents instead of raising when a worker's part is
  missing or malformed.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.bench import employee_schema
from repro.io import schema_to_dict
from repro.obs import (
    StatCounters,
    TraceBuffer,
    dominant_span,
    merge_trace_snapshots,
    render_prometheus,
    render_waterfall,
    span,
    span_names,
    start_trace,
    tracing_enabled,
)
from repro.service import (
    AuditServiceClient,
    FleetThread,
    ServerThread,
    parse_request,
    request_key,
)
from repro.service.metrics import ServiceMetrics, merge_snapshots
from repro.service.protocol import session_key


def _schema_doc(**sizes) -> dict:
    document = schema_to_dict(employee_schema(**sizes))
    document["tuple_probability"] = "1/4"
    return document


SCHEMA = _schema_doc()
SECRET = "S(n, p) :- Emp(n, d, p)"
VIEWS = {"bob": "V(n, d) :- Emp(n, d, p)"}


# ---------------------------------------------------------------------------
# Trace primitives (no service)
# ---------------------------------------------------------------------------
class TestTracePrimitives:
    def test_span_is_null_without_a_trace(self):
        assert not tracing_enabled()
        scope = span("anything")
        with scope as live:
            assert not live  # the null span is falsy: no allocation, no attrs

    def test_start_trace_builds_a_tree(self):
        with start_trace("root") as trace:
            with span("child") as child:
                child.set("k", 1)
                with span("grandchild"):
                    pass
            with span("sibling"):
                pass
        document = trace.to_dict()
        assert document["trace_id"] == trace.trace_id
        assert span_names(document) == ["root", "child", "grandchild", "sibling"]
        child_doc = document["root"]["children"][0]
        assert child_doc["attrs"] == {"k": 1}
        total_children = sum(
            c["duration_ms"] for c in document["root"]["children"]
        )
        assert total_children <= document["duration_ms"] + 0.001

    def test_dominant_span_reports_largest_self_time(self):
        with start_trace("root") as trace:
            with span("fast"):
                pass
            with span("slow"):
                time.sleep(0.02)
        dominant = dominant_span(trace.to_dict())
        assert dominant["name"] == "slow"

    def test_waterfall_renders_every_span(self):
        with start_trace("root") as trace:
            with span("inner"):
                pass
        text = render_waterfall(trace.to_dict())
        assert "root" in text and "inner" in text and trace.trace_id in text

    def test_trace_buffer_samples_head_tail_slow(self):
        buffer = TraceBuffer(head=2, tail=3, slow=2)
        for index in range(10):
            buffer.record(
                {"trace_id": f"t{index}", "started": index, "duration_ms": index}
            )
        snapshot = buffer.snapshot()
        assert snapshot["recorded"] == 10
        assert [d["trace_id"] for d in snapshot["head"]] == ["t0", "t1"]
        assert [d["trace_id"] for d in snapshot["tail"]] == ["t7", "t8", "t9"]
        assert [d["trace_id"] for d in snapshot["slow"]] == ["t9", "t8"]

    def test_merge_trace_snapshots_marks_partial(self):
        good = TraceBuffer().snapshot()
        merged = merge_trace_snapshots([good, None, "garbage"])
        assert merged["partial"] is True
        assert merge_trace_snapshots([good, good]).get("partial") is None


# ---------------------------------------------------------------------------
# Thread-safe counters and metric merging
# ---------------------------------------------------------------------------
class TestCounters:
    def test_bump_is_thread_safe(self):
        counters = StatCounters(("hits",))

        def worker():
            for _ in range(10_000):
                counters.bump("hits")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters["hits"] == 80_000
        counters.reset()
        assert counters["hits"] == 0

    def test_reads_stay_plain_dict(self):
        counters = StatCounters({"a": 2})
        counters.bump("a", 3)
        assert counters["a"] == 5
        assert dict(counters) == {"a": 5}
        assert json.dumps(counters) == '{"a": 5}'


class TestMetricsMerging:
    def test_merge_snapshots_tolerates_missing_parts(self):
        metrics = ServiceMetrics()
        metrics.observe("decide", "computed", elapsed_seconds=0.01)
        merged = merge_snapshots([metrics.mergeable_snapshot(), None, 17])
        assert merged["partial"] is True
        assert merged["operations"]["decide"]["requests"] == 1

    def test_merge_snapshots_clean_parts_not_partial(self):
        metrics = ServiceMetrics()
        metrics.observe("decide", "computed", elapsed_seconds=0.01)
        merged = merge_snapshots([metrics.mergeable_snapshot()])
        assert "partial" not in merged

    def test_prometheus_exposition_has_histogram_buckets(self):
        metrics = ServiceMetrics()
        for elapsed in (0.001, 0.02, 0.7):
            metrics.observe("decide", "computed", elapsed_seconds=elapsed)
        text = render_prometheus(metrics.snapshot(), gauges={"pending": 2})
        assert 'repro_requests_total{op="decide",outcome="computed"} 3' in text
        assert 'repro_request_duration_ms_bucket{op="decide",le="+Inf"} 3' in text
        assert "repro_request_duration_ms_sum" in text
        assert "repro_pending 2" in text
        # Buckets are cumulative and monotone.
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_request_duration_ms_bucket{op="decide"')
        ]
        assert buckets == sorted(buckets)


# ---------------------------------------------------------------------------
# Wire-protocol invariants
# ---------------------------------------------------------------------------
class TestFingerprintInvariance:
    def test_trace_field_never_enters_request_key(self):
        bare = {"op": "decide", "schema": SCHEMA, "secret": SECRET, "views": VIEWS}
        traced = dict(bare, trace={"id": "abc123", "return": True})
        assert request_key(parse_request(bare)) == request_key(parse_request(traced))
        assert session_key(parse_request(bare)) == session_key(parse_request(traced))

    def test_trace_field_is_validated(self):
        document = {"op": "ping", "trace": "not-an-object"}
        with pytest.raises(Exception):
            parse_request(document)


# ---------------------------------------------------------------------------
# Single-server service behaviour
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=2) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    with AuditServiceClient(*server.address) as connected:
        yield connected


class TestServerTracing:
    def test_untraced_envelope_has_no_observability_fields(self, client):
        response = client.request(
            "decide", schema=SCHEMA, secret="Splain(n) :- Emp(n, HR, p)", views=VIEWS
        )
        assert response["ok"] is True
        # The pre-tracing envelope shape, exactly: tracing off must not
        # add or rename a single field.
        assert set(response) == {"id", "ok", "op", "result", "server"}
        assert set(response["server"]) <= {"coalesced", "cached", "elapsed_ms"}
        assert "trace" not in response["server"]
        assert "trace_id" not in response

    def test_traced_request_returns_span_tree(self, client):
        response = client.request(
            "decide",
            schema=SCHEMA,
            secret="Straced(n, p) :- Emp(n, d, p)",
            views=VIEWS,
            trace={"return": True},
        )
        assert response["ok"] is True
        document = response["server"]["trace"]
        names = span_names(document)
        assert names[0] == "server.handle"
        assert "server.queue_wait" in names
        assert "server.execute" in names
        assert "session.decide" in names
        # Child durations sum to at most the root's duration.
        children = document["root"].get("children", [])
        assert sum(c["duration_ms"] for c in children) <= document["duration_ms"] + 0.001

    def test_traces_op_returns_buffer_snapshot(self, client):
        result = client.call("traces")
        assert result["recorded"] >= 1
        assert {"head", "tail", "slow", "limits"} <= set(result)

    def test_metrics_op_returns_prometheus_text(self, client):
        result = client.call("metrics")
        assert result["content_type"].startswith("text/plain")
        assert "repro_requests_total" in result["text"]
        assert "repro_request_duration_ms_bucket" in result["text"]

    def test_coalesced_followers_link_to_leader(self, server):
        fields = dict(
            schema=_schema_doc(names=3),
            secret="Sburst(p) :- Emp(n0, d, p)",
            views=VIEWS,
            trace={"return": True},
        )
        responses = []

        def one():
            with AuditServiceClient(*server.address) as connection:
                responses.append(connection.request("leakage", **fields))

        threads = [threading.Thread(target=one) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(responses) == 6 and all(r["ok"] for r in responses)

        leaders = [
            r for r in responses
            if not r["server"].get("coalesced") and not r["server"].get("cached")
        ]
        followers = [r for r in responses if r not in leaders]
        assert len(leaders) == 1, "the burst must cost one computation"
        leader_trace = leaders[0]["server"]["trace"]["trace_id"]
        assert followers, "the burst must produce coalesced/cached followers"
        for follower in followers:
            links = follower["server"]["trace"].get("links", [])
            assert any(
                link["trace_id"] == leader_trace
                and link["rel"] in ("coalesced-leader", "result-cache")
                for link in links
            ), f"follower trace lacks a leader link: {links}"


# ---------------------------------------------------------------------------
# Fleet: distributed traces, merged telemetry, restart survival
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet():
    with FleetThread(workers=2, worker_threads=2) as running:
        yield running


@pytest.fixture(scope="module")
def fleet_client(fleet):
    with AuditServiceClient(*fleet.address) as connected:
        yield connected


def _traced_decide(client: AuditServiceClient, secret: str) -> dict:
    return client.request(
        "decide", schema=SCHEMA, secret=secret, views=VIEWS, trace={"return": True}
    )


class TestFleetTracing:
    def test_distributed_waterfall_covers_all_layers(self, fleet_client):
        response = _traced_decide(fleet_client, "Sfleet(n, p) :- Emp(n, d, p)")
        assert response["ok"] is True
        document = response["server"]["trace"]
        names = span_names(document)
        assert names[0] == "router.route"
        for required in (
            "router.forward",
            "server.handle",
            "server.queue_wait",
            "server.execute",
            "session.decide",
        ):
            assert required in names, f"missing span {required} in {names}"
        children = document["root"].get("children", [])
        assert sum(c["duration_ms"] for c in children) <= document["duration_ms"] + 0.001

    def test_fleet_traces_op_merges_workers(self, fleet_client):
        result = fleet_client.call("traces")
        assert result["workers"] == 2
        assert result["recorded"] >= 1

    def test_fleet_metrics_op_aggregates_shards(self, fleet_client):
        result = fleet_client.call("metrics")
        assert "repro_requests_total" in result["text"]
        assert "repro_fleet_workers 2" in result["text"]

    def test_span_trees_survive_worker_restart(self, fleet, fleet_client):
        first = _traced_decide(fleet_client, "Srestart(n) :- Emp(n, HR, p)")
        assert first["ok"] is True
        shard = first["server"]["shard"]
        old_pid = fleet.fleet.worker_pids[shard]
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.time() + 30.0
        while time.time() < deadline:
            pids = fleet.fleet.worker_pids
            if pids[shard] not in (old_pid, -1):
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"worker {shard} did not restart within 30s")

        # A fresh traced request (new fingerprint, so it must compute)
        # still yields the full distributed span tree.
        for attempt in range(8):
            response = _traced_decide(
                fleet_client, f"Safter{attempt}(n, p) :- Emp(n, d, p)"
            )
            assert response["ok"] is True
            names = span_names(response["server"]["trace"])
            assert "router.forward" in names
            assert "server.handle" in names
            if response["server"]["shard"] == shard:
                return  # the restarted worker itself answered with spans
        raise AssertionError("no request routed to the restarted shard")
