"""Unit tests for the ConjunctiveQuery class."""

import pytest

from repro.cq import Atom, Comparison, ConjunctiveQuery, Constant, Variable, q
from repro.exceptions import QueryError
from repro.relational import Fact

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestConstruction:
    def test_requires_a_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((X,), ())

    def test_head_variables_must_be_safe(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((Y,), (Atom("R", (X,)),))

    def test_comparison_variables_must_be_safe(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                (), (Atom("R", (X,)),), (Comparison(Y, "=", Constant(1)),)
            )

    def test_constants_allowed_in_head(self):
        query = ConjunctiveQuery((Constant("k"), X), (Atom("R", (X,)),))
        assert query.arity == 2

    def test_boolean_constructor(self):
        query = ConjunctiveQuery.boolean((Atom("R", (X,)),))
        assert query.is_boolean
        assert query.arity == 0

    def test_fact_query(self):
        query = ConjunctiveQuery.fact_query(Fact("R", ("a", "b")))
        assert query.is_boolean
        assert query.body[0] == Atom("R", (Constant("a"), Constant("b")))


class TestProperties:
    def test_variable_sets(self):
        query = q("Q(x) :- R(x, y), S(y, z), x != z")
        assert query.head_variables == (Variable("x"),)
        assert query.variables == {Variable("x"), Variable("y"), Variable("z")}
        assert query.existential_variables == {Variable("y"), Variable("z")}

    def test_constants_collects_everywhere(self):
        query = q("Q('k', x) :- R(x, 'a'), x != 'b'")
        assert query.constants == {"k", "a", "b"}

    def test_relation_names(self):
        query = q("Q() :- R(x), S(x), R(x)")
        assert query.relation_names == {"R", "S"}

    def test_order_predicate_detection(self):
        assert q("Q() :- R(x, y), x < y").has_order_predicates
        assert not q("Q() :- R(x, y), x != y").has_order_predicates

    def test_symbol_count(self):
        query = q("Q(x) :- R(x, y), S(y, 'a')")
        assert query.symbol_count() == 3  # x, y and 'a'

    def test_monotone_flag(self):
        assert q("Q() :- R(x)").is_monotone

    def test_repr_contains_name_and_body(self):
        text = repr(q("MyQuery(x) :- R(x, y)"))
        assert "MyQuery" in text and "R" in text


class TestTransformations:
    def test_substitute_replaces_everywhere(self):
        query = q("Q(x) :- R(x, y), x != y")
        result = query.substitute({Variable("x"): Constant(3)})
        assert result.head == (Constant(3),)
        assert result.body[0].terms[0] == Constant(3)
        assert result.comparisons[0].left == Constant(3)

    def test_rename_apart_avoids_collisions(self):
        query = q("Q(x) :- R(x, y)")
        renamed = query.rename_apart({Variable("x")})
        assert Variable("x") not in renamed.variables
        assert Variable("y") in renamed.variables

    def test_rename_apart_without_collision_is_identity(self):
        query = q("Q(x) :- R(x, y)")
        assert query.rename_apart({Variable("z")}) is query

    def test_with_name(self):
        assert q("Q(x) :- R(x)").with_name("Other").name == "Other"


class TestBooleanSpecialisation:
    def test_binds_head_variables(self):
        query = q("S(n, p) :- Emp(n, d, p)")
        spec = query.boolean_specialisation(("ann", 42))
        assert spec.is_boolean
        atom = spec.body[0]
        assert atom.terms[0] == Constant("ann")
        assert atom.terms[2] == Constant(42)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            q("S(n) :- Emp(n, d, p)").boolean_specialisation(("a", "b"))

    def test_conflicting_head_constant_rejected(self):
        query = ConjunctiveQuery((Constant("k"),), (Atom("R", (X,)),))
        with pytest.raises(QueryError):
            query.boolean_specialisation(("other",))

    def test_repeated_head_variable_must_bind_consistently(self):
        query = ConjunctiveQuery((X, X), (Atom("R", (X,)),))
        spec = query.boolean_specialisation(("a", "a"))
        assert spec.body[0].terms[0] == Constant("a")
        with pytest.raises(QueryError):
            query.boolean_specialisation(("a", "b"))

    def test_matching_head_constant_allowed(self):
        query = ConjunctiveQuery((Constant("k"), X), (Atom("R", (X,)),))
        spec = query.boolean_specialisation(("k", "v"))
        assert spec.body[0].terms[0] == Constant("v")
