"""Unit tests for the JSON schema loader and the command-line interface."""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.exceptions import SchemaError
from repro.io import (
    audit_configuration_to_dict,
    dictionary_from_dict,
    dictionary_to_dict,
    load_audit_configuration,
    load_publishing_plan,
    load_schema,
    publishing_plan_to_dict,
    save_audit_configuration,
    save_publishing_plan,
    save_schema,
    schema_from_dict,
    schema_to_dict,
    schema_to_json,
)
from repro.probability.dictionary import Dictionary
from repro.session.cache import schema_fingerprint
from repro.session.plan import PublishingPlan

EMPLOYEE_DOCUMENT = {
    "relations": [
        {
            "name": "Emp",
            "attributes": ["name", "department", "phone"],
            "attribute_domains": {
                "name": ["n0", "n1"],
                "department": ["d0", "d1"],
                "phone": ["p0", "p1"],
            },
        }
    ],
    "tuple_probability": "1/4",
}


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(json.dumps(EMPLOYEE_DOCUMENT))
    return str(path)


class TestSchemaIO:
    def test_schema_from_dict(self):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        assert schema.relation("Emp").arity == 3
        assert len(schema.domain) == 6

    def test_explicit_global_domain(self):
        document = {
            "relations": [{"name": "R", "attributes": ["x", "y"]}],
            "domain": ["a", "b", "c"],
        }
        schema = schema_from_dict(document)
        assert list(schema.domain) == ["a", "b", "c"]

    def test_missing_relations_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"relations": []})

    def test_missing_attributes_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"relations": [{"name": "R"}]})

    def test_key_round_trip(self):
        document = {
            "relations": [
                {"name": "R", "attributes": ["k", "v"], "key": ["k"]}
            ],
            "domain": ["a"],
        }
        schema = schema_from_dict(document)
        assert schema.relation("R").key == ("k",)
        serialised = schema_to_dict(schema)
        assert serialised["relations"][0]["key"] == ["k"]
        assert schema_from_dict(serialised).relation("R").key == ("k",)

    def test_round_trip_preserves_attribute_domains(self):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        document = schema_to_dict(schema)
        rebuilt = schema_from_dict(document)
        assert set(rebuilt.domain) == set(schema.domain)
        assert rebuilt.relation("Emp").attribute_domains.keys() == {
            "name",
            "department",
            "phone",
        }

    def test_dictionary_from_dict_variants(self):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        dictionary = dictionary_from_dict(EMPLOYEE_DOCUMENT, schema)
        assert dictionary is not None
        assert dictionary.default == Fraction(1, 4)
        by_size = dictionary_from_dict(
            {"relations": EMPLOYEE_DOCUMENT["relations"], "expected_size": 2},
            schema,
        )
        assert by_size.expected_instance_size() == 2
        none = dictionary_from_dict({"relations": EMPLOYEE_DOCUMENT["relations"]}, schema)
        assert none is None

    def test_load_from_files(self, schema_file):
        schema = load_schema(schema_file)
        assert "Emp" in schema
        loaded_schema, dictionary = load_audit_configuration(schema_file)
        assert dictionary is not None
        assert loaded_schema.relation("Emp").arity == 3


# ---------------------------------------------------------------------------
# Saver counterparts: save → load → save identity
# ---------------------------------------------------------------------------
_domain_values = st.lists(
    st.sampled_from(["a", "b", "c", 0, 1, 2]), min_size=1, max_size=3, unique=True
)


@st.composite
def _schema_documents(draw):
    """Random loader-valid schema documents (every attribute has a domain)."""
    relation_count = draw(st.integers(min_value=1, max_value=3))
    relations = []
    for index in range(relation_count):
        arity = draw(st.integers(min_value=1, max_value=3))
        attributes = [f"a{i}" for i in range(arity)]
        spec = {
            "name": f"R{index}",
            "attributes": attributes,
            "attribute_domains": {
                attribute: draw(_domain_values) for attribute in attributes
            },
        }
        if draw(st.booleans()):
            spec["key"] = attributes[: draw(st.integers(min_value=1, max_value=arity))]
        relations.append(spec)
    return {"relations": relations}


class TestSaverRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(document=_schema_documents())
    def test_schema_load_save_load_identity(self, document):
        schema = schema_from_dict(document)
        serialised = schema_to_dict(schema)
        rebuilt = schema_from_dict(serialised)
        assert schema_fingerprint(rebuilt) == schema_fingerprint(schema)
        # to_dict is idempotent once normalised through a Schema
        assert schema_to_dict(rebuilt) == serialised

    @settings(max_examples=40, deadline=None)
    @given(
        document=_schema_documents(),
        numerator=st.integers(min_value=1, max_value=7),
        denominator=st.integers(min_value=8, max_value=64),
    )
    def test_dictionary_round_trip(self, document, numerator, denominator):
        schema = schema_from_dict(document)
        probability = Fraction(numerator, denominator)
        dictionary = Dictionary.uniform(schema, probability)
        serialised = dictionary_to_dict(dictionary)
        rebuilt = dictionary_from_dict(
            {**document, **serialised}, schema
        )
        assert rebuilt.default == probability

    def test_schema_file_round_trip(self, tmp_path):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        path = tmp_path / "schema.json"
        save_schema(schema, path)
        assert schema_fingerprint(load_schema(path)) == schema_fingerprint(schema)
        assert json.loads(schema_to_json(schema)) == schema_to_dict(schema)

    def test_audit_configuration_file_round_trip(self, tmp_path):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        path = tmp_path / "config.json"
        save_audit_configuration(schema, path, dictionary)
        loaded_schema, loaded_dictionary = load_audit_configuration(path)
        assert schema_fingerprint(loaded_schema) == schema_fingerprint(schema)
        assert loaded_dictionary.default == Fraction(1, 3)
        document = audit_configuration_to_dict(schema)
        assert "tuple_probability" not in document

    def test_publishing_plan_file_round_trip(self, tmp_path):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        plan = PublishingPlan(
            secrets={"pairs": "S(n, p) :- Emp(n, d, p)"},
            views={"bob": "V(n, d) :- Emp(n, d, p)", "carol": "W(d) :- Emp(n, d, p)"},
        )
        path = tmp_path / "plan.json"
        save_publishing_plan(plan, schema, path, Dictionary.uniform(schema, Fraction(1, 4)))
        loaded_schema, loaded_dictionary, loaded_plan = load_publishing_plan(path)
        assert schema_fingerprint(loaded_schema) == schema_fingerprint(schema)
        assert loaded_dictionary.default == Fraction(1, 4)
        assert loaded_plan.secret_names == plan.secret_names
        assert loaded_plan.recipients == plan.recipients

    def test_plan_with_query_objects_serialises_to_strings(self):
        from repro import q

        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        plan = PublishingPlan(
            secrets={"s": q("S(n) :- Emp(n, HR, p)")},
            views={"bob": q("V(n) :- Emp(n, Mgmt, p)")},
        )
        document = publishing_plan_to_dict(plan, schema)
        # rendered strings parse back to the original queries
        assert q(document["secrets"]["s"]) == q("S(n) :- Emp(n, HR, p)")
        assert q(document["views"]["bob"]) == q("V(n) :- Emp(n, Mgmt, p)")

    def test_non_uniform_dictionary_is_rejected(self):
        schema = schema_from_dict(EMPLOYEE_DOCUMENT)
        dictionary = Dictionary.uniform(schema, Fraction(1, 4))
        fact = dictionary.tuple_space()[0]
        skewed = dictionary.with_probability(fact, Fraction(1, 2))
        assert not skewed.is_uniform
        with pytest.raises(SchemaError):
            dictionary_to_dict(skewed)
        # an explicit override equal to the default is still uniform
        still_uniform = dictionary.with_probability(fact, Fraction(1, 4))
        assert dictionary_to_dict(still_uniform) == {"tuple_probability": "1/4"}


class TestCLI:
    def test_decide_secure_pair_exits_zero(self, schema_file, capsys):
        code = main(
            [
                "decide",
                "--schema", schema_file,
                "--secret", "S(n) :- Emp(n, HR, p)",
                "--view", "V(n) :- Emp(n, Mgmt, p)",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "secure" in output

    def test_decide_insecure_pair_exits_one(self, schema_file, capsys):
        code = main(
            [
                "decide",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "V(n, d) :- Emp(n, d, p)",
            ]
        )
        assert code == 1
        assert "NOT secure" in capsys.readouterr().out

    def test_quick_check_command(self, schema_file, capsys):
        code = main(
            [
                "quick",
                "--schema", schema_file,
                "--secret", "S(n) :- Emp(n, HR, p)",
                "--view", "V(n) :- Emp(n, Mgmt, p)",
            ]
        )
        assert code == 0
        assert "secure" in capsys.readouterr().out

    def test_audit_command_with_named_views(self, schema_file, capsys):
        code = main(
            [
                "audit",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "bob=V(n, d) :- Emp(n, d, p)",
                "--view", "carol=W(d, p) :- Emp(n, d, p)",
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "partial" in output
        assert "bob" in output

    def test_leakage_command(self, schema_file, capsys):
        code = main(
            [
                "leakage",
                "--schema", schema_file,
                "--secret", "S(p) :- Emp(n, d, p)",
                "--view", "V(n) :- Emp(n, d, p)",
                "--probability", "1/4",
            ]
        )
        output = capsys.readouterr().out
        assert code == 1
        assert "leak(S, V̄)" in output

    def test_collusion_command(self, schema_file, capsys):
        code = main(
            [
                "collusion",
                "--schema", schema_file,
                "--secret", "S(n) :- Emp(n, HR, p)",
                "--view", "bob=V(n) :- Emp(n, Mgmt, p)",
                "--view", "carol=W(n) :- Emp(n, Mgmt, p)",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "learns nothing" in output

    def test_parse_error_reports_and_exits_two(self, schema_file, capsys):
        code = main(
            [
                "decide",
                "--schema", schema_file,
                "--secret", "not a query",
                "--view", "V(n) :- Emp(n, Mgmt, p)",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_view_argument_is_an_argparse_error(self, schema_file):
        with pytest.raises(SystemExit):
            main(["decide", "--schema", schema_file, "--secret", "S(n) :- Emp(n, HR, p)"])


class TestParseViews:
    """Regression tests for ``_parse_views`` recipient detection."""

    def test_named_and_unnamed_views(self):
        from repro.cli import _parse_views

        views = _parse_views(
            ["bob=V(n) :- Emp(n, Mgmt, p)", "W(d) :- Emp(n, d, p)"]
        )
        assert views == {
            "bob": "V(n) :- Emp(n, Mgmt, p)",
            "user2": "W(d) :- Emp(n, d, p)",
        }

    def test_equals_in_head_constant_is_not_a_recipient(self):
        # A '=' inside a quoted head constant used to tear the query apart
        # at the wrong place; only a bare name left of ':-' is a recipient.
        from repro.cli import _parse_views

        views = _parse_views(["V('a=b', x) :- R(x, y)"])
        assert views == {"user1": "V('a=b', x) :- R(x, y)"}

    def test_recipient_with_comparison_in_body(self):
        from repro.cli import _parse_views

        views = _parse_views(["carol=W(d, p) :- Emp(n, d, p), d = 'HR'"])
        assert views == {"carol": "W(d, p) :- Emp(n, d, p), d = 'HR'"}

    def test_unnamed_view_with_comparison_in_body(self):
        from repro.cli import _parse_views

        views = _parse_views(["W(d, p) :- Emp(n, d, p), d = 'HR'"])
        assert views == {"user1": "W(d, p) :- Emp(n, d, p), d = 'HR'"}

    def test_named_view_with_equals_constant_in_head(self):
        from repro.cli import _parse_views

        views = _parse_views(["bob=V('x=y') :- R(a, b)"])
        assert views == {"bob": "V('x=y') :- R(a, b)"}


PLAN_DOCUMENT = {
    **EMPLOYEE_DOCUMENT,
    "secrets": {"hr_names": "S(n) :- Emp(n, HR, p)"},
    "views": {
        "bob": "V(n) :- Emp(n, Mgmt, p)",
        "carol": "W(d) :- Emp(n, d, p)",
    },
}


@pytest.fixture
def plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(PLAN_DOCUMENT))
    return str(path)


class TestPublishingPlanIO:
    def test_load_publishing_plan(self, plan_file):
        from repro.io import load_publishing_plan

        schema, dictionary, plan = load_publishing_plan(plan_file)
        assert "Emp" in schema
        assert dictionary is not None
        assert plan.secret_names == ("hr_names",)
        assert plan.recipients == ("bob", "carol")

    def test_plan_document_requires_secrets_and_views(self):
        from repro.io import publishing_plan_from_dict

        with pytest.raises(SchemaError):
            publishing_plan_from_dict({**EMPLOYEE_DOCUMENT, "views": {"b": "V(x) :- Emp(x, d, p)"}})
        with pytest.raises(SchemaError):
            publishing_plan_from_dict({**EMPLOYEE_DOCUMENT, "secrets": {"s": "S(x) :- Emp(x, d, p)"}})


class TestPlanCommand:
    def test_plan_with_disclosure_exits_one(self, plan_file, capsys):
        code = main(["plan", "--plan", plan_file])
        output = capsys.readouterr().out
        assert code == 1
        assert "NOT secure" in output
        assert "carol" in output

    def test_safe_plan_exits_zero(self, tmp_path, capsys):
        document = {
            **EMPLOYEE_DOCUMENT,
            "secrets": {"hr_names": "S(n) :- Emp(n, HR, p)"},
            "views": {"bob": "V(n) :- Emp(n, Mgmt, p)"},
        }
        path = tmp_path / "safe_plan.json"
        path.write_text(json.dumps(document))
        code = main(["plan", "--plan", str(path), "--show-cache-stats"])
        output = capsys.readouterr().out
        assert code == 0
        assert "secure against every coalition" in output
        assert "cache:" in output

    def test_plan_with_unknown_engine_exits_two(self, plan_file, capsys):
        code = main(["plan", "--plan", plan_file, "--engine", "quantum"])
        assert code == 2
        assert "available engines" in capsys.readouterr().err

    def test_missing_plan_file_exits_two(self, capsys):
        code = main(["plan", "--plan", "/nonexistent/plan.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The service-facing CLI: audit --json, request, serve
# ---------------------------------------------------------------------------
class TestAuditJson:
    def test_audit_json_includes_observability(self, schema_file, capsys):
        code = main(
            [
                "audit",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "bob=V(n, d) :- Emp(n, d, p)",
                "--json",
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["all_secure"] is False
        assert document["findings"][0]["disclosure"] == "partial"
        observability = document["observability"]
        assert observability["critical_tuple_cache"]["misses"] > 0
        assert observability["engines"]["criticality"] == "pruned-parallel"
        # the audit measured leakage, so the kernel counters must surface
        assert "probability_kernels" in observability
        assert "exact" in observability["probability_kernels"]


class TestRequestCLI:
    @pytest.fixture()
    def running_server(self):
        from repro.service import ServerThread

        with ServerThread(workers=2) as server:
            yield server

    def test_request_ping(self, running_server, capsys):
        host, port = running_server.address
        code = main(["request", "--host", host, "--port", str(port), "--op", "ping"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["pong"] is True

    def test_request_decide_disclosure_exits_one(
        self, running_server, schema_file, capsys
    ):
        host, port = running_server.address
        code = main(
            [
                "request",
                "--host", host,
                "--port", str(port),
                "--op", "decide",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "bob=V(n, d) :- Emp(n, d, p)",
            ]
        )
        assert code == 1
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["verdict"] is False

    def test_request_payload_file(self, running_server, tmp_path, capsys):
        host, port = running_server.address
        payload = tmp_path / "request.json"
        payload.write_text(
            json.dumps(
                {
                    "op": "decide",
                    "schema": EMPLOYEE_DOCUMENT,
                    "secret": "S(n) :- Emp(n, HR, p)",
                    "views": ["V(n) :- Emp(n, Mgmt, p)"],
                }
            )
        )
        code = main(
            ["request", "--host", host, "--port", str(port), "--payload", str(payload)]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["verdict"] is True

    def test_request_protocol_error_exits_two(self, running_server, capsys):
        host, port = running_server.address
        code = main(
            ["request", "--host", host, "--port", str(port), "--op", "decide"]
        )
        assert code == 2
        response = json.loads(capsys.readouterr().out)
        assert response["error"]["code"] == "invalid-request"

    def test_request_unreachable_daemon_exits_two(self, capsys):
        code = main(
            ["request", "--host", "127.0.0.1", "--port", "1", "--op", "ping"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_request_without_op_is_an_argparse_error(self, running_server):
        host, port = running_server.address
        with pytest.raises(SystemExit):
            main(["request", "--host", host, "--port", str(port)])

    def test_request_audit_disclosure_exits_one(
        self, running_server, schema_file, capsys
    ):
        # Exit codes must mirror the local `audit` command (CI gates key
        # on them): a disclosed secret exits 1, not 0.
        host, port = running_server.address
        code = main(
            [
                "request",
                "--host", host,
                "--port", str(port),
                "--op", "audit",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "bob=V(n, d) :- Emp(n, d, p)",
            ]
        )
        assert code == 1
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["all_secure"] is False

    def test_request_quick_inconclusive_exits_one(
        self, running_server, schema_file, capsys
    ):
        # Mirror the local `quick` command: only "certainly secure" is 0.
        host, port = running_server.address
        code = main(
            [
                "request",
                "--host", host,
                "--port", str(port),
                "--op", "quick",
                "--schema", schema_file,
                "--secret", "S(n, p) :- Emp(n, d, p)",
                "--view", "V(n, d) :- Emp(n, d, p)",
            ]
        )
        assert code == 1
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["verdict"] is None
