"""Tests for the workload generator and its replay harness."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.service import ServerThread, parse_request
from repro.workload import (
    DeltaStreamSpec,
    WorkloadSpec,
    delta_stream_state,
    generate_delta_stream,
    generate_workload,
    load_workload,
    replay_workload,
    save_workload,
    table1_templates,
)


class TestTemplates:
    def test_every_template_is_a_valid_request(self):
        templates = table1_templates()
        assert len(templates) == 4 * 7 + 1  # 7 ops per Table 1 row + one plan
        for template in templates:
            request = parse_request(template)
            assert request.op in {
                "decide", "quick", "audit", "collusion", "leakage",
                "verify", "with_knowledge", "plan",
            }

    def test_templates_target_three_variable_employee_schema(self):
        for template in table1_templates():
            relations = template["schema"]["relations"]
            assert [r["name"] for r in relations] == ["Emp"]
            assert relations[0]["attributes"] == ["name", "department", "phone"]


class TestGeneration:
    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(seed=11, requests=50)
        assert generate_workload(spec) == generate_workload(spec)

    def test_different_seeds_differ(self):
        one = generate_workload(WorkloadSpec(seed=1, requests=50))
        two = generate_workload(WorkloadSpec(seed=2, requests=50))
        assert one != two

    def test_every_request_is_valid(self):
        for request in generate_workload(WorkloadSpec(seed=5, requests=80)):
            parse_request(request)

    def test_duplicates_present_at_high_fraction(self):
        requests = generate_workload(
            WorkloadSpec(seed=3, requests=60, duplicate_fraction=0.8)
        )
        rendered = [repr(sorted(r.items(), key=lambda kv: kv[0])) for r in requests]
        assert len(set(rendered)) < len(rendered)

    def test_zero_duplicate_fraction_table1_only(self):
        requests = generate_workload(
            WorkloadSpec(seed=3, requests=30, duplicate_fraction=0.0, random_fraction=0.0)
        )
        assert all(
            r["schema"]["relations"][0]["name"] == "Emp" for r in requests
        )

    def test_mix_restricts_operations(self):
        requests = generate_workload(
            WorkloadSpec(
                seed=4,
                requests=40,
                mix={"decide": 1.0},
                duplicate_fraction=0.0,
                random_fraction=0.0,
            )
        )
        assert {r["op"] for r in requests} == {"decide"}

    def test_rejects_empty_workload(self):
        with pytest.raises(ReproError):
            generate_workload(WorkloadSpec(requests=0))

    def test_rejects_unknown_mix(self):
        with pytest.raises(ReproError):
            generate_workload(WorkloadSpec(mix={"teleport": 1.0}))


class TestDeltaStreams:
    def test_deterministic_given_seed(self):
        spec = DeltaStreamSpec(seed=7, deltas=32)
        assert generate_delta_stream(spec) == generate_delta_stream(spec)

    def test_different_seeds_differ(self):
        one = generate_delta_stream(DeltaStreamSpec(seed=1, deltas=32))
        two = generate_delta_stream(DeltaStreamSpec(seed=2, deltas=32))
        assert one != two

    def test_every_request_is_valid_and_ordered(self):
        requests = generate_delta_stream(DeltaStreamSpec(seed=5, deltas=24))
        assert len(requests) == 25  # one live-create + 24 deltas
        first = parse_request(requests[0])
        assert first.op == "live-create"
        for document in requests[1:]:
            request = parse_request(document)
            assert request.op == "apply-delta"
            assert request.live == first.live

    def test_deletes_only_touch_live_facts(self):
        requests = generate_delta_stream(DeltaStreamSpec(seed=9, deltas=40))
        state = {tuple([f[0], tuple(f[1])]) for f in requests[0]["facts"]}
        for document in requests[1:]:
            removed = {tuple([f[0], tuple(f[1])]) for f in document.get("remove") or ()}
            added = {tuple([f[0], tuple(f[1])]) for f in document.get("add") or ()}
            assert removed <= state
            assert not (added & removed)
            state = (state - removed) | added

    def test_mirror_tracks_the_stream(self):
        requests = generate_delta_stream(DeltaStreamSpec(seed=3, deltas=20))
        facts, views = delta_stream_state(requests)
        # Replaying the documents by hand lands on the same state.
        state = {tuple([f[0], tuple(f[1])]) for f in requests[0]["facts"]}
        published = dict(requests[0].get("views") or {})
        for document in requests[1:]:
            for name in document.get("retract") or ():
                published.pop(name)
            published.update(document.get("publish") or {})
            state -= {tuple([f[0], tuple(f[1])]) for f in document.get("remove") or ()}
            state |= {tuple([f[0], tuple(f[1])]) for f in document.get("add") or ()}
        assert {tuple([f[0], tuple(f[1])]) for f in facts} == state
        assert views == published

    def test_rejects_degenerate_specs(self):
        with pytest.raises(ReproError):
            generate_delta_stream(DeltaStreamSpec(deltas=0))
        with pytest.raises(ReproError):
            generate_delta_stream(DeltaStreamSpec(secrets={}))
        with pytest.raises(ReproError):
            generate_delta_stream(DeltaStreamSpec(mix={"teleport": 1.0}))


class TestWorkloadFiles:
    def test_save_load_round_trip(self, tmp_path):
        requests = generate_workload(WorkloadSpec(seed=9, requests=25))
        path = tmp_path / "workload.json"
        save_workload(requests, path)
        assert load_workload(path) == requests

    def test_load_rejects_non_workload(self, tmp_path):
        path = tmp_path / "not_workload.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ReproError):
            load_workload(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"version": 99, "requests": []}')
        with pytest.raises(ReproError):
            load_workload(path)


class TestReplay:
    def test_replay_against_live_server(self):
        requests = generate_workload(
            WorkloadSpec(seed=21, requests=40, duplicate_fraction=0.5)
        )
        with ServerThread(workers=4) as server:
            summary = replay_workload(requests, *server.address, concurrency=6)
        assert summary["requests"] == 40
        assert summary["ok"] == 40
        assert summary["errors"] == 0
        assert summary["coalesced"] + summary["cached"] > 0
        assert summary["latency_ms"]["p50"] >= 0

    def test_replay_needs_a_connection(self):
        with pytest.raises(ReproError):
            replay_workload([], "127.0.0.1", 1, concurrency=0)

    def test_replay_subscribe_collects_every_notification(self):
        spec = DeltaStreamSpec(seed=13, deltas=16, live="replay-live")
        requests = generate_delta_stream(spec)
        with ServerThread(workers=2) as server:
            summary = replay_workload(
                requests, *server.address, concurrency=2, subscribe="replay-live"
            )
        assert summary["requests"] == len(requests)
        assert summary["ok"] == len(requests)
        assert summary["errors"] == 0
        assert summary["live_requests"] == len(requests)
        assert summary["notifications_expected"] > 0
        notes = summary["notifications"]
        assert len(notes) == summary["notifications_expected"]
        revisions = [note["revision"] for note in notes]
        assert revisions == sorted(revisions)
        # The stream's final state agrees with the generator's mirror.
        facts, views = delta_stream_state(requests)
        assert notes[-1]["fact_count"] == len(facts)
        assert sorted(notes[-1]["views"]) == sorted(views)

    def test_replay_accounts_every_request_despite_transport_errors(self):
        # An oversized line overruns the server's stream buffer, which
        # closes that connection; the replay worker must count exactly one
        # error for it, reconnect, and drain the rest of the queue.
        requests = [
            {"op": "ping", "padding": "y" * 50000},
            {"op": "ping"},
            {"op": "ping"},
            {"op": "ping"},
        ]
        with ServerThread(workers=1, max_payload=2048) as server:
            summary = replay_workload(requests, *server.address, concurrency=1)
        assert summary["requests"] == 4
        accounted = summary["ok"] + summary["errors"] + summary["overloaded"]
        assert accounted == 4, summary
        assert summary["ok"] >= 2
        assert summary["errors"] >= 1
