"""Unit tests for query terms, atoms and comparison predicates."""

import pytest

from repro.cq import Atom, Comparison, Constant, Variable, fresh_variable
from repro.exceptions import QueryError
from repro.relational import Fact


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_constant_equality(self):
        assert Constant("a") == Constant("a")
        assert Constant(1) != Constant("1")

    def test_fresh_variables_are_distinct(self):
        assert fresh_variable() != fresh_variable()

    def test_variables_and_constants_never_equal(self):
        assert Variable("a") != Constant("a")


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("R", (Variable("x"), Constant("a"), Variable("x")))
        assert atom.variables == {Variable("x")}
        assert atom.constants == {"a"}
        assert atom.arity == 3

    def test_invalid_term_type_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("not-a-term",))

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryError):
            Atom("", (Variable("x"),))

    def test_substitute(self):
        atom = Atom("R", (Variable("x"), Variable("y")))
        result = atom.substitute({Variable("x"): Constant(1)})
        assert result == Atom("R", (Constant(1), Variable("y")))

    def test_ground_produces_fact(self):
        atom = Atom("R", (Variable("x"), Constant("a")))
        assert atom.ground({Variable("x"): 7}) == Fact("R", (7, "a"))

    def test_ground_requires_total_assignment(self):
        atom = Atom("R", (Variable("x"),))
        with pytest.raises(QueryError):
            atom.ground({})

    def test_as_fact_requires_ground_atom(self):
        assert Atom("R", (Constant(1),)).as_fact() == Fact("R", (1,))
        with pytest.raises(QueryError):
            Atom("R", (Variable("x"),)).as_fact()


class TestComparison:
    def test_unsupported_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison(Variable("x"), "~", Variable("y"))

    def test_evaluate_with_assignment(self):
        comparison = Comparison(Variable("x"), "<", Constant(5))
        assert comparison.evaluate({Variable("x"): 3})
        assert not comparison.evaluate({Variable("x"): 7})

    def test_evaluate_requires_bound_variables(self):
        comparison = Comparison(Variable("x"), "=", Constant(5))
        with pytest.raises(QueryError):
            comparison.evaluate({})

    def test_incomparable_values_raise(self):
        comparison = Comparison(Variable("x"), "<", Constant(5))
        with pytest.raises(QueryError):
            comparison.evaluate({Variable("x"): "text"})

    def test_order_predicate_detection(self):
        assert Comparison(Variable("x"), "<", Variable("y")).is_order_predicate
        assert not Comparison(Variable("x"), "!=", Variable("y")).is_order_predicate

    def test_substitute(self):
        comparison = Comparison(Variable("x"), "!=", Variable("y"))
        result = comparison.substitute({Variable("y"): Constant(2)})
        assert result.right == Constant(2)

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 1, 1, True),
            ("!=", 1, 1, False),
            ("<=", 1, 2, True),
            (">=", 1, 2, False),
            (">", 3, 2, True),
        ],
    )
    def test_all_operators(self, op, left, right, expected):
        comparison = Comparison(Constant(left), op, Constant(right))
        assert comparison.evaluate({}) is expected
