"""Property-based tests (hypothesis) for the security core.

These tests drive the paper's central equivalences with randomly
generated boolean queries over a fixed small schema:

* the polynomial ``f_Q`` agrees with the brute-force probability and its
  variables are exactly the critical tuples (Proposition 4.13),
* crit-disjointness coincides with exact statistical independence
  (Theorem 4.5) and with the FKG-style inequality being tight,
* the minimal-instance critical-tuple search agrees with the naive
  enumeration (Definition 4.4),
* leakage is zero exactly for secure pairs and never negative.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import Dictionary, q
from repro.core import (
    critical_tuples,
    critical_tuples_naive,
    positive_leakage,
    practical_security_check,
)
from repro.cq import Atom, ConjunctiveQuery, Constant, Variable, conjoin
from repro.probability import ExactEngine, QueryTrue, query_polynomial
from repro.relational import Domain, Fact, RelationSchema, Schema, tuple_space

DOMAIN_VALUES = ("a", "b")
VARIABLE_NAMES = ("x", "y")

SCHEMA = Schema([RelationSchema("R", ("c1", "c2"))], domain=Domain(DOMAIN_VALUES))
ALL_FACTS = tuple(tuple_space(SCHEMA))
HALF = Dictionary.uniform(SCHEMA, Fraction(1, 2))
THIRD = Dictionary.uniform(SCHEMA, Fraction(1, 3))


def terms():
    variables = st.sampled_from([Variable(n) for n in VARIABLE_NAMES])
    constants = st.sampled_from([Constant(v) for v in DOMAIN_VALUES])
    return st.one_of(variables, constants)


def atoms():
    return st.builds(lambda t1, t2: Atom("R", (t1, t2)), terms(), terms())


def boolean_queries(max_subgoals: int = 2):
    return st.lists(atoms(), min_size=1, max_size=max_subgoals).map(
        lambda body: ConjunctiveQuery((), tuple(body), name="Q")
    )


def probability_assignments():
    probabilities = st.sampled_from(
        [Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(2, 3), Fraction(1)]
    )
    return st.tuples(*([probabilities] * len(ALL_FACTS))).map(
        lambda values: dict(zip(ALL_FACTS, values))
    )


class TestPolynomialProperties:
    @settings(max_examples=50, deadline=None)
    @given(boolean_queries(), probability_assignments())
    def test_polynomial_matches_bruteforce_probability(self, query, assignment):
        poly = query_polynomial(query, ALL_FACTS)
        dictionary = Dictionary(SCHEMA, assignment, default=0)
        engine = ExactEngine(dictionary)
        assert poly.evaluate(assignment) == engine.probability(QueryTrue(query))

    @settings(max_examples=50, deadline=None)
    @given(boolean_queries())
    def test_polynomial_variables_are_the_critical_tuples(self, query):
        poly = query_polynomial(query, ALL_FACTS)
        assert poly.variables == critical_tuples(query, SCHEMA)

    @settings(max_examples=50, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_product_rule_iff_disjoint_critical_tuples(self, secret, view):
        left_crit = critical_tuples(secret, SCHEMA)
        right_crit = critical_tuples(view, SCHEMA)
        engine = ExactEngine(HALF)
        joint = engine.joint_probability([QueryTrue(secret), QueryTrue(view)])
        product = engine.probability(QueryTrue(secret)) * engine.probability(QueryTrue(view))
        # FKG inequality: monotone events are positively correlated.
        assert joint >= product
        if not (left_crit & right_crit):
            assert joint == product


class TestCriticalTupleProperties:
    @settings(max_examples=40, deadline=None)
    @given(boolean_queries())
    def test_fast_and_naive_critical_tuples_agree(self, query):
        assert critical_tuples(query, SCHEMA) == critical_tuples_naive(query, SCHEMA)

    @settings(max_examples=40, deadline=None)
    @given(boolean_queries())
    def test_critical_tuples_are_subgoal_images(self, query):
        from repro.core import candidate_critical_facts

        assert critical_tuples(query, SCHEMA) <= candidate_critical_facts(query, SCHEMA)

    @settings(max_examples=40, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_conjunction_critical_tuples_within_union(self, left, right):
        combined = conjoin(left, right)
        union = critical_tuples(left, SCHEMA) | critical_tuples(right, SCHEMA)
        assert critical_tuples(combined, SCHEMA) <= union


class TestSecurityProperties:
    @settings(max_examples=30, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_theorem_4_5_for_boolean_queries(self, secret, view):
        from repro.core import verify_security_probabilistically

        disjoint = not (critical_tuples(secret, SCHEMA) & critical_tuples(view, SCHEMA))
        for dictionary in (HALF, THIRD):
            assert verify_security_probabilistically(secret, view, dictionary) == disjoint

    @settings(max_examples=30, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_practical_check_is_sound(self, secret, view):
        quick = practical_security_check(secret, view)
        if quick.certainly_secure:
            assert not (critical_tuples(secret, SCHEMA) & critical_tuples(view, SCHEMA))

    @settings(max_examples=20, deadline=None)
    @given(boolean_queries(), boolean_queries())
    def test_leakage_zero_iff_independent(self, secret, view):
        result = positive_leakage(secret, view, THIRD)
        assert result.leakage >= 0
        disjoint = not (critical_tuples(secret, SCHEMA) & critical_tuples(view, SCHEMA))
        if disjoint:
            assert result.leakage == 0

    @settings(max_examples=20, deadline=None)
    @given(boolean_queries())
    def test_security_is_reflexively_violated_for_nontrivial_queries(self, query):
        # A non-trivial query is never secure with respect to itself
        # (symmetry + total disclosure), i.e. its critical set intersects
        # itself unless it is empty.
        crit = critical_tuples(query, SCHEMA)
        from repro.core import verify_security_probabilistically

        if crit:
            assert not verify_security_probabilistically(query, query, HALF)
        else:
            assert verify_security_probabilistically(query, query, HALF)
