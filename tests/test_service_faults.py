"""Chaos suite: the resilience layer under deterministic fault injection.

Everything here drives real servers/fleets (real sockets, real forked
worker processes) through seeded :class:`repro.faults.FaultPlan`\\ s,
covering the PR's hard guarantees:

* the fault engine itself is deterministic (``after``/``count`` bounds,
  seeded ``probability``, env installation);
* client retry backoff is decorrelated jitter from a *seeded* RNG —
  two policies with one seed produce one delay sequence;
* a ``deadline_ms`` budget expires as a structured ``deadline-exceeded``
  answer and the overrunning computation is abandoned, not leaked;
* a SIGKILLed worker mid-coalesced-burst answers *every* follower with
  a retryable ``worker-crashed`` error (nobody hangs), and the shard
  restarts;
* the per-shard circuit breaker walks healthy → degraded → quarantined
  → half-open → closed;
* a sqlite I/O error inside the ``sql`` evaluation engine degrades to
  the compiled engine with an identical verdict (counted, not silent);
* stale coalescer claims are reclaimed (dead owner, TTL) and rows are
  boot-namespaced so a restarted fleet never serves stale verdicts;
* the chaos gate: a 64-request mixed workload through retrying clients
  completes 100% successfully under a plan that SIGKILLs a worker
  mid-burst and injects a sqlite error, with verdicts identical to a
  fault-free run.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue
import sqlite3
import threading
import time

import pytest

from repro import faults
from repro.bench import employee_schema
from repro.cq import eval_engine_scope, evaluate, q
from repro.cq.sql import SQL_STATS
from repro.exceptions import ReproError
from repro.io import schema_to_dict
from repro.relational import Fact, Instance
from repro.service import (
    AuditServiceClient,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    FleetCoalescer,
    FleetThread,
    RetryPolicy,
    ServerThread,
)
from repro.service.health import (
    STATE_DEGRADED,
    STATE_HALF_OPEN,
    STATE_HEALTHY,
    STATE_QUARANTINED,
)
from repro.service.protocol import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_WORKER_CRASHED,
    parse_request,
    request_key,
)
from repro.workload import replay_workload


def _schema_doc(**sizes) -> dict:
    document = schema_to_dict(employee_schema(**sizes))
    document["tuple_probability"] = "1/4"
    return document


SCHEMA = _schema_doc()
SECRET = "S(n, p) :- Emp(n, d, p)"
VIEWS = {"bob": "V(n, d) :- Emp(n, d, p)"}

#: Large enough that ``leakage`` reliably takes hundreds of ms — a
#: computation that is still in flight when a fault fires.
SLOW_SCHEMA = _schema_doc(names=3)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process without an active fault plan."""
    yield
    faults.uninstall()
    faults.set_context(shard=None)


def _dead_pid() -> int:
    """A pid guaranteed to belong to no live process."""
    process = multiprocessing.Process(target=lambda: None)
    process.start()
    process.join()
    return process.pid


def _primary_shard(document: dict, workers: int = 2) -> int:
    """The rendezvous-primary shard of one request (mirrors the router)."""
    fingerprint = hashlib.sha256(
        request_key(parse_request(document)).encode("utf8")
    ).hexdigest()
    return max(
        range(workers),
        key=lambda index: hashlib.blake2b(
            f"{fingerprint}|{index}".encode("ascii"), digest_size=8
        ).digest(),
    )


# ---------------------------------------------------------------------------
# The fault engine
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_after_and_count_bound_firing(self):
        plan = FaultPlan.from_spec(
            {"faults": [{"point": "sql.execute", "action": "delay",
                         "after": 2, "count": 2}]}
        )
        fired = [bool(plan.fire("sql.execute")) for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_unbounded_count(self):
        plan = FaultPlan.from_spec(
            [{"point": "sql.execute", "action": "delay", "count": None}]
        )
        assert all(plan.fire("sql.execute") for _ in range(5))

    def test_op_and_shard_selectors(self):
        plan = FaultPlan(
            [FaultRule(point="server.execute", action="delay",
                       op="decide", shard=1, count=None)]
        )
        assert not plan.fire("server.execute", op="audit", shard=1)
        assert not plan.fire("server.execute", op="decide", shard=0)
        assert plan.fire("server.execute", op="decide", shard=1)

    def test_seeded_probability_is_deterministic(self):
        def draws(seed):
            plan = FaultPlan.from_spec(
                {"seed": seed,
                 "faults": [{"point": "sql.execute", "action": "delay",
                             "count": None, "probability": 0.5}]}
            )
            return [bool(plan.fire("sql.execute")) for _ in range(32)]

        first, twin, other = draws(7), draws(7), draws(8)
        assert first == twin
        assert first != other
        assert any(first) and not all(first)

    def test_from_text_reads_inline_json_and_files(self, tmp_path):
        spec = {"seed": 3, "faults": [{"point": "sql.execute", "action": "delay"}]}
        inline = FaultPlan.from_text(json.dumps(spec))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec))
        from_file = FaultPlan.from_text(str(path))
        assert inline.seed == from_file.seed == 3
        assert len(inline.rules) == len(from_file.rules) == 1

    def test_validation_rejects_unknown_points_actions_fields(self):
        with pytest.raises(ReproError, match="unknown fault point"):
            FaultPlan.from_spec([{"point": "nope", "action": "delay"}])
        with pytest.raises(ReproError, match="unknown fault action"):
            FaultPlan.from_spec([{"point": "sql.execute", "action": "nope"}])
        with pytest.raises(ReproError, match="unknown fault fields"):
            FaultPlan.from_spec([{"point": "sql.execute", "action": "delay",
                                  "bogus": 1}])
        with pytest.raises(ReproError, match="probability"):
            FaultPlan.from_spec([{"point": "sql.execute", "action": "delay",
                                  "probability": 2.0}])

    def test_fire_without_a_plan_is_empty_and_stats_none(self):
        faults.uninstall()
        assert faults.fire("sql.execute") == ()
        assert faults.stats() is None

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV,
            '{"seed": 1, "faults": [{"point": "sql.execute", "action": "delay"}]}',
        )
        plan = faults.install_from_env()
        assert plan is faults.active_plan()
        assert plan.seed == 1

    def test_blank_env_leaves_programmatic_plan(self, monkeypatch):
        plan = FaultPlan()
        faults.install(plan)
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        assert faults.install_from_env() is plan

    def test_stats_reports_hits_and_fired(self):
        plan = FaultPlan.from_spec(
            [{"point": "sql.execute", "action": "delay", "after": 1}]
        )
        faults.install(plan)
        faults.fire("sql.execute")
        faults.fire("sql.execute")
        (rule,) = faults.stats()["rules"]
        assert rule["hits"] == 2 and rule["fired"] == 1


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_seeded_jitter_is_deterministic(self):
        def delays(seed):
            policy = RetryPolicy(seed=seed)
            rng = policy.rng()
            sequence, previous = [], 0.0
            for _ in range(8):
                previous = policy.next_delay(rng, previous)
                sequence.append(previous)
            return sequence

        assert delays(42) == delays(42)
        assert delays(42) != delays(43)
        for delay in delays(42):
            assert RetryPolicy().base_delay <= delay <= RetryPolicy().max_delay

    def test_should_retry_response(self):
        policy = RetryPolicy()
        assert not policy.should_retry_response({"ok": True})
        assert policy.should_retry_response(
            {"ok": False, "error": {"code": "overloaded"}}
        )
        assert policy.should_retry_response(
            {"ok": False, "error": {"code": "worker-crashed"}}
        )
        # The server's explicit retryable flag wins over the code list.
        assert policy.should_retry_response(
            {"ok": False, "error": {"code": "internal", "retryable": True}}
        )
        assert not policy.should_retry_response(
            {"ok": False, "error": {"code": "deadline-exceeded",
                                    "retryable": False}}
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ReproError):
            RetryPolicy(max_delay=0.01, base_delay=0.05)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_full_ladder_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            degrade_after=1, quarantine_after=3, cooldown_seconds=5.0,
            clock=lambda: clock[0],
        )
        assert breaker.state == STATE_HEALTHY and breaker.allows()
        breaker.record_failure()
        assert breaker.state == STATE_DEGRADED and breaker.allows()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_QUARANTINED
        assert not breaker.allows()
        # Cooldown elapses: exactly one half-open probe is admitted.
        clock[0] = 5.1
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allows()
        assert not breaker.allows()  # second caller is still locked out
        breaker.record_success()
        assert breaker.state == STATE_HEALTHY and breaker.allows()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            quarantine_after=1, cooldown_seconds=2.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert not breaker.allows()
        clock[0] = 2.1
        assert breaker.allows()  # the probe
        breaker.record_failure()  # probe failed: back to quarantined
        assert breaker.state == STATE_QUARANTINED
        assert not breaker.allows()
        clock[0] = 4.3  # a fresh cooldown from the re-open
        assert breaker.allows()
        stats = breaker.stats()
        assert stats["opened"] == 2 and stats["probes"] == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(quarantine_after=0)
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown_seconds=-1.0)


# ---------------------------------------------------------------------------
# Coalescer crash recovery
# ---------------------------------------------------------------------------
class TestCoalescerRecovery:
    def test_dead_owner_claim_is_reclaimed(self, tmp_path):
        path = str(tmp_path / "coalesce.db")
        dead = _dead_pid()
        with FleetCoalescer(path, owner=dead, boot="b1") as crashed:
            assert crashed.claim("fp") is None  # the soon-dead owner
        with FleetCoalescer(path, owner=os.getpid(), boot="b1") as survivor:
            # Not a subscribe: the dead owner's claim is stolen outright.
            assert survivor.claim("fp") is None
            assert survivor.stats()["reclaimed"] == 1

    def test_overdue_claim_is_reclaimed_by_ttl(self, tmp_path):
        path = str(tmp_path / "coalesce.db")
        with FleetCoalescer(
            path, owner=os.getpid(), boot="b1", claim_ttl=0.05
        ) as table:
            assert table.claim("fp") is None
            assert table.claim("fp") == ""  # fresh claim: still coalesces
            time.sleep(0.08)
            assert table.claim("fp") is None  # overdue: stolen
            assert table.stats()["reclaimed"] == 1

    def test_boots_are_namespaced(self, tmp_path):
        path = str(tmp_path / "coalesce.db")
        with FleetCoalescer(path, owner=os.getpid(), boot="gen1") as first:
            assert first.claim("fp") is None
            first.publish("fp", '{"ok": true, "gen": 1}')
            with FleetCoalescer(path, owner=os.getpid(), boot="gen2") as second:
                # The restarted generation neither sees the old verdict
                # nor coalesces against the old row.
                assert second.lookup("fp") is None
                assert second.claim("fp") is None

    def test_dead_boot_rows_are_purged_on_start(self, tmp_path):
        path = str(tmp_path / "coalesce.db")
        dead = _dead_pid()
        with FleetCoalescer(path, owner=dead, boot="old") as stale:
            assert stale.claim("fp") is None
            stale.publish("fp", '{"ok": true}')
        with FleetCoalescer(path, owner=os.getpid(), boot="new"):
            pass  # init purges the dead generation
        rows = sqlite3.connect(path).execute(
            "SELECT COUNT(*) FROM fleet_requests WHERE boot = 'old'"
        ).fetchone()[0]
        assert rows == 0


# ---------------------------------------------------------------------------
# Deadlines (single-process daemon)
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expiry_under_a_slow_computation(self):
        faults.install(FaultPlan(
            [FaultRule(point="server.execute", action="delay",
                       op="decide", delay=0.6, count=1)]
        ))
        with ServerThread() as server:
            with AuditServiceClient(*server.address) as client:
                response = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    deadline_ms=120,
                )
                assert not response["ok"]
                error = response["error"]
                assert error["code"] == ERROR_DEADLINE_EXCEEDED
                assert error["retryable"] is False
                assert "120" in error["message"]
                stats = client.request("stats")["result"]
                assert stats["abandoned"]["total"] == 1
                assert stats["totals"]["deadline"] == 1
                # The delay rule is spent: the same question now answers
                # comfortably inside an identical budget.
                retry = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    deadline_ms=30_000,
                )
                assert retry["ok"] is True

    def test_deadline_is_excluded_from_the_fingerprint(self):
        with ServerThread() as server:
            with AuditServiceClient(*server.address) as client:
                first = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    deadline_ms=20_000,
                )
                second = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    deadline_ms=40_000,
                )
                assert first["ok"] and second["ok"]
                # A different budget is the same question: answered from
                # the result cache, no second computation.
                assert second["server"].get("cached") is True

    def test_invalid_deadline_is_a_structured_error(self):
        with ServerThread() as server:
            with AuditServiceClient(*server.address) as client:
                response = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    deadline_ms=-5,
                )
                assert not response["ok"]
                assert response["error"]["code"] == "invalid-request"


# ---------------------------------------------------------------------------
# Client retries against injected transport faults
# ---------------------------------------------------------------------------
class TestClientRetries:
    def test_dropped_connection_is_retried_transparently(self):
        faults.install(FaultPlan(
            [FaultRule(point="server.respond", action="drop",
                       op="decide", count=1)]
        ))
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05,
                             seed=1)
        with ServerThread() as server:
            with AuditServiceClient(*server.address, retry_policy=policy) as client:
                response = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS
                )
                assert response["ok"] is True
                assert client.retry_stats["retries"] >= 1

    def test_without_a_policy_the_drop_surfaces(self):
        faults.install(FaultPlan(
            [FaultRule(point="server.respond", action="drop",
                       op="decide", count=1)]
        ))
        with ServerThread() as server:
            with AuditServiceClient(*server.address) as client:
                with pytest.raises(ReproError):
                    client.request(
                        "decide", schema=SCHEMA, secret=SECRET, views=VIEWS
                    )

    def test_replay_workload_takes_a_retry_policy(self):
        faults.install(FaultPlan(
            [FaultRule(point="server.respond", action="drop",
                       op="decide", count=2)]
        ))
        requests = [
            {"op": "decide", "schema": SCHEMA,
             "secret": f"R{i}(n) :- Emp(n, d, p)", "views": VIEWS}
            for i in range(8)
        ]
        with ServerThread() as server:
            summary = replay_workload(
                requests, *server.address, concurrency=4,
                retry_policy=RetryPolicy(max_attempts=4, base_delay=0.01,
                                         max_delay=0.05, seed=2),
            )
        assert summary["ok"] == 8
        assert summary["errors"] == 0


# ---------------------------------------------------------------------------
# sql -> compiled degradation
# ---------------------------------------------------------------------------
class TestSqlDegradation:
    QUERY = q("Q(n) :- Emp(n, d)")
    INSTANCE = Instance({Fact("Emp", ("ann", "ops")), Fact("Emp", ("bo", "hr"))})

    def test_io_error_degrades_with_identical_answers(self):
        with eval_engine_scope("compiled"):
            expected = evaluate(self.QUERY, self.INSTANCE)
        faults.install(FaultPlan(
            [FaultRule(point="sql.execute", action="sqlite-error", count=1)]
        ))
        before = SQL_STATS["sql_io_fallbacks"]
        with eval_engine_scope("sql"):
            degraded = evaluate(self.QUERY, self.INSTANCE)
            again = evaluate(self.QUERY, self.INSTANCE)  # fault spent: sql path
        assert degraded == again == expected
        assert SQL_STATS["sql_io_fallbacks"] == before + 1

    def test_service_answers_identically_through_the_degradation(self):
        with ServerThread() as server:
            with AuditServiceClient(*server.address) as client:
                clean = client.request(
                    "decide", schema=SCHEMA, secret=SECRET, views=VIEWS,
                    eval_engine="sql",
                )
                assert clean["ok"] is True
                faults.install(FaultPlan(
                    [FaultRule(point="sql.execute", action="sqlite-error",
                               count=1)]
                ))
                faulted = client.request(
                    "decide", schema=SCHEMA,
                    secret="S2(d) :- Emp(n, d, p)", views=VIEWS,
                    eval_engine="sql",
                )
                assert faulted["ok"] is True
        with ServerThread() as fresh:
            with AuditServiceClient(*fresh.address) as client:
                faults.uninstall()
                reference = client.request(
                    "decide", schema=SCHEMA,
                    secret="S2(d) :- Emp(n, d, p)", views=VIEWS,
                    eval_engine="sql",
                )
        assert faulted["result"]["verdict"] == reference["result"]["verdict"]


# ---------------------------------------------------------------------------
# Fleet chaos
# ---------------------------------------------------------------------------
def _drain_with_verdicts(address, requests, *, policy=None, concurrency=8):
    """Replay ``requests`` and return (verdict-by-index, failure list)."""
    pending: "queue.Queue" = queue.Queue()
    for index, request in enumerate(requests):
        pending.put((index, request))
    verdicts: dict = {}
    failures: list = []
    lock = threading.Lock()

    def drain():
        client = AuditServiceClient(*address, retry_policy=policy)
        try:
            while True:
                try:
                    index, request = pending.get_nowait()
                except queue.Empty:
                    return
                fields = {k: v for k, v in request.items() if k != "op"}
                try:
                    response = client.request(request["op"], **fields)
                except Exception as error:
                    client.close()
                    client = AuditServiceClient(*address, retry_policy=policy)
                    with lock:
                        failures.append((index, f"transport: {error}"))
                    continue
                with lock:
                    if response.get("ok"):
                        verdicts[index] = (response.get("result") or {}).get(
                            "verdict"
                        )
                    else:
                        failures.append((index, response.get("error")))
        finally:
            client.close()

    threads = [threading.Thread(target=drain, daemon=True) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
    return verdicts, failures


def _mixed_workload(n: int) -> list:
    """``n`` distinct decide requests, every fourth on the sql engine.

    Odd indices ask about a department the view never mentions
    (disjoint critical tuples, verdict True); even indices ask for the
    full secret against the full view (verdict False).  The mix makes
    a *wrong* answer — not just a missing one — detectable by the
    verdict comparison.
    """
    documents = []
    for i in range(n):
        if i % 2:
            document = {"op": "decide", "schema": SCHEMA,
                        "secret": f"S{i}(n) :- Emp(n, HR, p)",
                        "views": {"bob": "V(n) :- Emp(n, Mgmt, p)"}}
        else:
            document = {"op": "decide", "schema": SCHEMA,
                        "secret": f"S{i}(n, p) :- Emp(n, d, p)",
                        "views": VIEWS}
        if i % 4 == 0:
            document["eval_engine"] = "sql"
        documents.append(document)
    return documents


class TestFleetChaos:
    def test_sigkill_mid_coalesced_burst_answers_every_follower(self, monkeypatch):
        document = {
            "op": "leakage", "schema": SLOW_SCHEMA,
            "secret": "S(n, p) :- Emp(n, d, p)", "views": VIEWS,
        }
        # Scope the kill to the request's own shard: every worker booted
        # on that shard dies on its first leakage computation, so the
        # retry below can only succeed through the circuit breaker's
        # diversion to the healthy shard.
        primary = _primary_shard(document)
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV,
            json.dumps({"seed": 0, "faults": [
                {"point": "server.execute", "action": "kill",
                 "op": "leakage", "shard": primary, "count": 1},
            ]}),
        )
        responses: list = []
        lock = threading.Lock()

        def one():
            with AuditServiceClient(*fleet.address, timeout=60.0) as client:
                response = client.request(
                    document["op"],
                    **{k: v for k, v in document.items() if k != "op"},
                )
            with lock:
                responses.append(response)

        with FleetThread(workers=2, worker_threads=2) as fleet:
            threads = [threading.Thread(target=one) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            # The guarantee is liveness: nobody hangs until a drain
            # timeout.  Every response is either the retryable crash
            # error, or — when the burst spreads enough for the breaker
            # to quarantine the killed shard mid-burst — a genuine
            # answer computed by the healthy fallback shard.
            assert len(responses) == 6, "a follower hung past the crash"
            crashed = [r for r in responses if not r["ok"]]
            assert crashed, "the kill fault never surfaced to any caller"
            for response in crashed:
                error = response["error"]
                assert error["code"] == ERROR_WORKER_CRASHED
                assert error["retryable"] is True
            # The supervisor restarts the shard; a retrying client rides
            # over the crash window and gets the real answer.
            policy = RetryPolicy(max_attempts=8, base_delay=0.2,
                                 max_delay=2.0, budget_seconds=60.0, seed=3)
            with AuditServiceClient(
                *fleet.address, timeout=60.0, retry_policy=policy
            ) as client:
                answer = client.request(
                    document["op"],
                    **{k: v for k, v in document.items() if k != "op"},
                )
            assert answer["ok"] is True

    def test_fleet_stats_surface_health_and_faults(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV,
            '{"seed": 0, "faults": []}',
        )
        with FleetThread(workers=2, worker_threads=1) as fleet:
            with AuditServiceClient(*fleet.address) as client:
                client.request("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
                stats = client.request("stats")["result"]
        doc = stats["fleet"]
        assert doc["boot_id"]
        assert doc["diverted"] == 0
        assert doc["faults"]["rules"] == []
        assert doc["coalescer"]["boot"] == doc["boot_id"]
        for shard in doc["shards"]:
            assert shard["health"] == STATE_HEALTHY
            assert shard["breaker"]["failures"] == 0

    def test_chaos_gate_64_requests_all_succeed_with_true_verdicts(
        self, monkeypatch
    ):
        requests = _mixed_workload(64)

        # Fault-free reference run.
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        faults.uninstall()
        with FleetThread(workers=2, worker_threads=2) as fleet:
            expected, failures = _drain_with_verdicts(fleet.address, requests)
        assert not failures and len(expected) == 64
        # Both verdicts occur, so the comparison below can catch a
        # degraded path answering wrongly, not only one not answering.
        assert set(expected.values()) == {True, False}

        # Chaos run: one worker SIGKILLed mid-burst, one injected sqlite
        # I/O error, everything ridden over by retrying clients.
        monkeypatch.setenv(
            faults.FAULT_PLAN_ENV,
            json.dumps({"seed": 0, "faults": [
                {"point": "server.execute", "action": "kill",
                 "shard": 0, "after": 20, "count": 1},
                {"point": "sql.execute", "action": "sqlite-error",
                 "after": 2, "count": 1},
            ]}),
        )
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=2.0,
                             budget_seconds=90.0, seed=11)
        with FleetThread(
            workers=2, worker_threads=2,
            breaker_options={"cooldown_seconds": 0.5},
        ) as fleet:
            verdicts, failures = _drain_with_verdicts(
                fleet.address, requests, policy=policy
            )
            with AuditServiceClient(*fleet.address) as client:
                stats = client.request("stats")["result"]
        assert not failures, f"chaos run had user-visible errors: {failures[:3]}"
        assert len(verdicts) == 64
        assert verdicts == expected
        # The faults genuinely fired in the workers.
        restarts = sum(s["restarts"] for s in stats["fleet"]["shards"])
        assert restarts >= 1, "the kill fault never took a worker down"
