"""Unit tests for security under prior knowledge (Section 5)."""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import (
    CardinalityConstraintKnowledge,
    ConjunctionKnowledge,
    KeyConstraintKnowledge,
    PriorViewKnowledge,
    TupleStatusKnowledge,
    decide_security,
    decide_with_cardinality_constraint,
    decide_with_key_constraints,
    decide_with_knowledge,
    decide_with_prior_view,
    decide_with_tuple_status,
    verify_security_probabilistically,
    verify_with_knowledge,
)
from repro.exceptions import KnowledgeError
from repro.relational import Domain, Fact, Instance, RelationSchema, Schema


@pytest.fixture
def kv_schema() -> Schema:
    return Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b", "c"))


@pytest.fixture
def keyed_schema() -> Schema:
    return Schema(
        [RelationSchema("R", ("k", "v"), key=("k",))], domain=Domain.of("a", "b", "c")
    )


class TestKnowledgeClasses:
    def test_key_knowledge_equivalence_relation(self):
        knowledge = KeyConstraintKnowledge({"R": (0,)})
        assert knowledge.equivalent(Fact("R", ("a", "b")), Fact("R", ("a", "c")))
        assert not knowledge.equivalent(Fact("R", ("a", "b")), Fact("R", ("b", "b")))
        assert not knowledge.equivalent(Fact("R", ("a", "b")), Fact("S", ("a", "b")))

    def test_key_knowledge_without_declared_key_falls_back_to_identity(self):
        knowledge = KeyConstraintKnowledge({})
        assert knowledge.equivalent(Fact("R", ("a", "b")), Fact("R", ("a", "b")))
        assert not knowledge.equivalent(Fact("R", ("a", "b")), Fact("R", ("a", "c")))

    def test_key_knowledge_from_schema(self, keyed_schema):
        knowledge = KeyConstraintKnowledge.from_schema(keyed_schema)
        assert knowledge.key_positions("R") == (0,)

    def test_key_knowledge_from_schema_requires_keys(self, kv_schema):
        with pytest.raises(KnowledgeError):
            KeyConstraintKnowledge.from_schema(kv_schema)

    def test_key_constraint_event(self, keyed_schema):
        knowledge = KeyConstraintKnowledge.from_schema(keyed_schema)
        event = knowledge.event(keyed_schema)
        good = Instance.of(Fact("R", ("a", "b")), Fact("R", ("b", "b")))
        bad = Instance.of(Fact("R", ("a", "b")), Fact("R", ("a", "c")))
        assert event.occurs(good)
        assert not event.occurs(bad)

    def test_cardinality_knowledge_validation(self):
        with pytest.raises(KnowledgeError):
            CardinalityConstraintKnowledge("about", 3)
        with pytest.raises(KnowledgeError):
            CardinalityConstraintKnowledge("exactly", -1)

    def test_cardinality_event_variants(self, kv_schema):
        instance = Instance.of(Fact("R", ("a", "b")), Fact("R", ("b", "c")))
        assert CardinalityConstraintKnowledge("exactly", 2).event(kv_schema).occurs(instance)
        assert CardinalityConstraintKnowledge("at_most", 2).event(kv_schema).occurs(instance)
        assert not CardinalityConstraintKnowledge("at_least", 3).event(kv_schema).occurs(instance)
        per_relation = CardinalityConstraintKnowledge("exactly", 2, relation="R")
        assert per_relation.event(kv_schema).occurs(instance)

    def test_tuple_status_knowledge_consistency(self):
        fact = Fact("R", ("a", "b"))
        with pytest.raises(KnowledgeError):
            TupleStatusKnowledge(present=[fact], absent=[fact])

    def test_tuple_status_event(self, kv_schema):
        present = Fact("R", ("a", "b"))
        absent = Fact("R", ("b", "b"))
        knowledge = TupleStatusKnowledge(present=[present], absent=[absent])
        assert knowledge.covers(present) and knowledge.covers(absent)
        assert not knowledge.covers(Fact("R", ("c", "c")))
        event = knowledge.event(kv_schema)
        assert event.occurs(Instance.of(present))
        assert not event.occurs(Instance.of(present, absent))

    def test_prior_view_knowledge_requires_answer_for_non_boolean(self):
        with pytest.raises(KnowledgeError):
            PriorViewKnowledge(q("U(x) :- R(x, y)"))

    def test_conjunction_knowledge(self, keyed_schema):
        knowledge = ConjunctionKnowledge(
            [
                KeyConstraintKnowledge.from_schema(keyed_schema),
                TupleStatusKnowledge(present=[Fact("R", ("a", "b"))]),
            ]
        )
        event = knowledge.event(keyed_schema)
        assert event.occurs(Instance.of(Fact("R", ("a", "b"))))
        assert not event.occurs(Instance.of(Fact("R", ("b", "c"))))
        assert "AND" in knowledge.describe()

    def test_conjunction_knowledge_requires_parts(self):
        with pytest.raises(KnowledgeError):
            ConjunctionKnowledge([])


class TestApplication2Keys:
    def test_secure_without_keys_insecure_with_keys(self, kv_schema):
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('a', 'c')")
        assert decide_security(secret, view, kv_schema).secure
        knowledge = KeyConstraintKnowledge({"R": (0,)})
        decision = decide_with_key_constraints(secret, view, knowledge, kv_schema)
        assert decision.secure is False
        assert decision.conclusive

    def test_distinct_keys_remain_secure(self, kv_schema):
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('b', 'c')")
        knowledge = KeyConstraintKnowledge({"R": (0,)})
        decision = decide_with_key_constraints(secret, view, knowledge, kv_schema)
        assert decision.secure is True

    def test_numeric_check_agrees(self, kv_schema):
        # The key-constraint verdicts are confirmed by the literal
        # Definition 5.1 check on a concrete dictionary.
        dictionary = Dictionary.uniform(
            Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b", "c")),
            Fraction(1, 3),
        )
        knowledge = KeyConstraintKnowledge({"R": (0,)})
        insecure = verify_with_knowledge(
            q("S() :- R('a', 'b')"), q("V() :- R('a', 'c')"), knowledge, dictionary
        )
        secure = verify_with_knowledge(
            q("S() :- R('a', 'b')"), q("V() :- R('b', 'c')"), knowledge, dictionary
        )
        assert insecure is False
        assert secure is True


class TestApplication3Cardinality:
    def test_cardinality_destroys_security(self, kv_schema):
        secret = q("S() :- R('a', 'b')")
        view = q("V() :- R('b', 'c')")
        assert decide_security(secret, view, kv_schema).secure
        knowledge = CardinalityConstraintKnowledge("exactly", 1)
        decision = decide_with_cardinality_constraint(secret, view, knowledge, kv_schema)
        assert decision.secure is False

    def test_numeric_check_confirms_cardinality_leak(self, kv_schema):
        small = Schema([RelationSchema("R", ("k", "v"))], domain=Domain.of("a", "b"))
        dictionary = Dictionary.uniform(small, Fraction(1, 2))
        knowledge = CardinalityConstraintKnowledge("exactly", 1)
        assert not verify_with_knowledge(
            q("S() :- R('a', 'b')"), q("V() :- R('b', 'a')"), knowledge, dictionary
        )

    def test_trivial_secret_stays_secure(self, kv_schema):
        secret = q("S() :- R(x, y), x != x")  # unsatisfiable, hence trivial
        view = q("V() :- R('b', 'c')")
        knowledge = CardinalityConstraintKnowledge("at_most", 2)
        decision = decide_with_cardinality_constraint(secret, view, knowledge, kv_schema)
        assert decision.secure is True


class TestApplication4TupleStatus:
    def test_disclosing_common_critical_tuple_restores_security(self, binary_ab_schema):
        secret = q("S() :- R('a', -)")
        view = q("V() :- R(-, 'b')")
        assert not decide_security(secret, view, binary_ab_schema).secure
        knowledge = TupleStatusKnowledge(absent=[Fact("R", ("a", "b"))])
        decision = decide_with_tuple_status(secret, view, knowledge, binary_ab_schema)
        assert decision.secure is True

    def test_disclosing_presence_also_works(self, binary_ab_schema):
        secret = q("S() :- R('a', -)")
        view = q("V() :- R(-, 'b')")
        knowledge = TupleStatusKnowledge(present=[Fact("R", ("a", "b"))])
        decision = decide_with_tuple_status(secret, view, knowledge, binary_ab_schema)
        assert decision.secure is True
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 3))
        assert verify_with_knowledge(secret, view, knowledge, dictionary)

    def test_partial_disclosure_is_inconclusive(self, binary_ab_schema):
        secret = q("S(x, y) :- R(x, y)")
        view = q("V(y, x) :- R(x, y)")
        knowledge = TupleStatusKnowledge(absent=[Fact("R", ("a", "b"))])
        decision = decide_with_tuple_status(secret, view, knowledge, binary_ab_schema)
        assert decision.secure is None
        assert not decision.conclusive

    def test_already_secure_pair(self, binary_ab_schema):
        secret = q("S() :- R('a', 'a')")
        view = q("V() :- R('b', 'b')")
        knowledge = TupleStatusKnowledge()
        decision = decide_with_tuple_status(secret, view, knowledge, binary_ab_schema)
        assert decision.secure is True


class TestApplication5PriorViews:
    @pytest.fixture
    def schema(self) -> Schema:
        return Schema(
            [
                RelationSchema("R1", ("a1", "a2", "a3")),
                RelationSchema("R2", ("a1", "a2", "a3")),
            ],
            domain=Domain.of("a", "b", "c", "d", "e", "f"),
        )

    def test_prior_view_absorbs_new_disclosure(self, schema):
        # A three-column rendition of the paper's Application 5 example.
        prior = q("U() :- R1('a', 'b', -), R2('d', 'e', -)")
        secret = q("S() :- R1('a', -, -), R2('d', 'e', 'f')")
        view = q("V() :- R1('a', 'b', 'c'), R2('d', -, -)")
        assert not decide_security(secret, prior, schema).secure
        assert not decide_security(secret, view, schema).secure
        decision = decide_with_prior_view(secret, view, prior, schema)
        assert decision.secure is True

    def test_detects_additional_disclosure(self, schema):
        prior = q("U() :- R2('d', 'e', -)")
        secret = q("S() :- R1('a', -, -)")
        view = q("V() :- R1('a', 'b', -)")
        decision = decide_with_prior_view(secret, view, prior, schema)
        assert decision.secure is False

    def test_rejects_non_boolean_queries(self, schema):
        with pytest.raises(KnowledgeError):
            decide_with_prior_view(
                q("S(x) :- R1(x, -, -)"), q("V() :- R1('a', -, -)"), q("U() :- R2('d', -, -)"), schema
            )


class TestDispatchAndNumericCheck:
    def test_dispatch_selects_procedures(self, binary_ab_schema, kv_schema):
        key_decision = decide_with_knowledge(
            q("S() :- R('a', 'b')"),
            q("V() :- R('a', 'c')"),
            KeyConstraintKnowledge({"R": (0,)}),
            kv_schema,
        )
        assert key_decision.method == "corollary-5.3-keys"

        card_decision = decide_with_knowledge(
            q("S() :- R('a', 'b')"),
            q("V() :- R('b', 'c')"),
            CardinalityConstraintKnowledge("exactly", 1),
            kv_schema,
        )
        assert card_decision.method == "application-3-cardinality"

        status_decision = decide_with_knowledge(
            q("S() :- R('a', -)"),
            q("V() :- R(-, 'b')"),
            TupleStatusKnowledge(absent=[Fact("R", ("a", "b"))]),
            binary_ab_schema,
        )
        assert status_decision.method == "corollary-5.4-tuple-status"

    def test_dispatch_prior_view(self, binary_ab_schema):
        prior = PriorViewKnowledge(q("U() :- R('a', 'a')"))
        decision = decide_with_knowledge(
            q("S() :- R('a', 'b')"), q("V() :- R('b', 'b')"), prior, binary_ab_schema
        )
        assert decision.method == "corollary-5.5-prior-view"
        assert decision.secure is True

    def test_dispatch_unsupported_combination_is_inconclusive(self, binary_ab_schema):
        prior = PriorViewKnowledge(q("U(x) :- R(x, y)"), answer=[("a",)])
        decision = decide_with_knowledge(
            q("S(x) :- R(x, y)"), q("V(y) :- R(x, y)"), prior, binary_ab_schema
        )
        assert decision.secure is None

    def test_verify_with_knowledge_rejects_zero_probability_knowledge(
        self, binary_ab_schema
    ):
        dictionary = Dictionary.uniform(binary_ab_schema, 0)
        knowledge = TupleStatusKnowledge(present=[Fact("R", ("a", "a"))])
        with pytest.raises(KnowledgeError):
            verify_with_knowledge(
                q("S() :- R('a', 'b')"), q("V() :- R('b', 'b')"), knowledge, dictionary
            )

    def test_relative_security_numeric(self, binary_ab_schema):
        # Relative security: once the prior view U (which equals the secret)
        # has been published, publishing V discloses nothing *additional*
        # about S even though S is insecure w.r.t. V in isolation.
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        secret = q("S() :- R('a', 'a')")
        view = q("V() :- R('a', 'a'), R('b', 'b')")
        prior = PriorViewKnowledge(q("U() :- R('a', 'a')"))
        assert not verify_security_probabilistically(secret, view, dictionary)
        assert verify_with_knowledge(secret, view, prior, dictionary)
