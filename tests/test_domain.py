"""Unit tests for finite domains (repro.relational.domain)."""

import pytest

from repro.exceptions import DomainError
from repro.relational import Domain, union_domain
from repro.relational.domain import AttributeDomain


class TestDomainConstruction:
    def test_of_builds_ordered_domain(self):
        domain = Domain.of("a", "b", "c")
        assert list(domain) == ["a", "b", "c"]

    def test_duplicates_are_removed_preserving_order(self):
        domain = Domain(["b", "a", "b", "c", "a"])
        assert list(domain) == ["b", "a", "c"]

    def test_empty_domain_is_rejected(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_integers_constructor(self):
        domain = Domain.integers(4, start=10)
        assert list(domain) == [10, 11, 12, 13]

    def test_integers_requires_positive_size(self):
        with pytest.raises(DomainError):
            Domain.integers(0)

    def test_symbols_constructor(self):
        domain = Domain.symbols(3, prefix="v")
        assert list(domain) == ["v0", "v1", "v2"]

    def test_symbols_requires_positive_size(self):
        with pytest.raises(DomainError):
            Domain.symbols(-1)


class TestDomainProtocol:
    def test_len_and_contains(self):
        domain = Domain.of("a", "b")
        assert len(domain) == 2
        assert "a" in domain
        assert "z" not in domain

    def test_index_of_known_value(self):
        domain = Domain.of("a", "b", "c")
        assert domain.index_of("b") == 1

    def test_index_of_unknown_value_raises(self):
        with pytest.raises(DomainError):
            Domain.of("a").index_of("missing")

    def test_domains_with_same_values_are_equal(self):
        assert Domain.of("a", "b") == Domain.of("a", "b")

    def test_domain_is_hashable(self):
        assert hash(Domain.of("a", "b")) == hash(Domain.of("a", "b"))


class TestDomainOperations:
    def test_extend_adds_new_constants(self):
        domain = Domain.of("a").extend(["b", "a", "c"])
        assert list(domain) == ["a", "b", "c"]

    def test_restrict_keeps_order(self):
        domain = Domain.of("a", "b", "c").restrict(["c", "a"])
        assert list(domain) == ["a", "c"]

    def test_restrict_to_nothing_raises(self):
        with pytest.raises(DomainError):
            Domain.of("a", "b").restrict(["z"])

    def test_union_domain_merges_in_order(self):
        merged = union_domain([Domain.of("a", "b"), Domain.of("b", "c")])
        assert list(merged) == ["a", "b", "c"]


class TestAttributeDomain:
    def test_wraps_domain(self):
        attribute = AttributeDomain("name", Domain.of("alice", "bob"))
        assert len(attribute) == 2
        assert list(attribute) == ["alice", "bob"]
