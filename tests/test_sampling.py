"""Unit tests for the Monte-Carlo sampler."""

from fractions import Fraction

import pytest

from repro import Dictionary, MonteCarloSampler, q
from repro.exceptions import ProbabilityError
from repro.probability import FactPresent, QueryTrue
from repro.relational import Domain, Fact, RelationSchema, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))


@pytest.fixture
def dictionary(schema) -> Dictionary:
    return Dictionary.uniform(schema, Fraction(1, 2))


class TestSampling:
    def test_determinism_with_seed(self, dictionary):
        first = MonteCarloSampler(dictionary, seed=42).sample_instances(5)
        second = MonteCarloSampler(dictionary, seed=42).sample_instances(5)
        assert first == second

    def test_different_seeds_differ(self, dictionary):
        first = MonteCarloSampler(dictionary, seed=1).sample_instances(10)
        second = MonteCarloSampler(dictionary, seed=2).sample_instances(10)
        assert first != second

    def test_extreme_probabilities(self, schema):
        empty = MonteCarloSampler(Dictionary.uniform(schema, 0), seed=0).sample_instance()
        full = MonteCarloSampler(Dictionary.uniform(schema, 1), seed=0).sample_instance()
        assert len(empty) == 0
        assert len(full) == 4

    def test_restrict_to_subset_of_facts(self, dictionary):
        fact = Fact("R", ("a", "a"))
        sampler = MonteCarloSampler(dictionary, seed=0, restrict_to=[fact])
        for instance in sampler.sample_instances(20):
            assert instance.facts <= {fact}


class TestEstimates:
    def test_estimate_close_to_exact(self, dictionary):
        sampler = MonteCarloSampler(dictionary, seed=7)
        estimate = sampler.estimate_probability(FactPresent(Fact("R", ("a", "b"))), samples=4000)
        assert abs(estimate.value - 0.5) < 0.05
        low, high = estimate.confidence_interval()
        assert low <= 0.5 <= high

    def test_conditional_estimate(self, dictionary):
        sampler = MonteCarloSampler(dictionary, seed=7)
        target = FactPresent(Fact("R", ("a", "a")))
        given = QueryTrue(q("Q() :- R('a', y)"))
        estimate = sampler.estimate_conditional(target, given, samples=4000)
        # Exact value: P(t1 | t1 or t2) = 0.5 / 0.75 = 2/3.
        assert abs(estimate.value - 2 / 3) < 0.06

    def test_conditional_on_impossible_event_raises(self, schema):
        dictionary = Dictionary.uniform(schema, 0)
        sampler = MonteCarloSampler(dictionary, seed=0)
        with pytest.raises(ProbabilityError):
            sampler.estimate_conditional(
                FactPresent(Fact("R", ("a", "a"))),
                FactPresent(Fact("R", ("b", "b"))),
                samples=50,
            )

    def test_sample_counts_must_be_positive(self, dictionary):
        sampler = MonteCarloSampler(dictionary, seed=0)
        with pytest.raises(ProbabilityError):
            sampler.estimate_probability(FactPresent(Fact("R", ("a", "a"))), samples=0)
        with pytest.raises(ProbabilityError):
            sampler.estimate_conditional(
                FactPresent(Fact("R", ("a", "a"))),
                FactPresent(Fact("R", ("b", "b"))),
                samples=-1,
            )
        with pytest.raises(ProbabilityError):
            sampler.appear_independent(
                FactPresent(Fact("R", ("a", "a"))),
                FactPresent(Fact("R", ("b", "b"))),
                samples=0,
            )

    def test_appear_independent_screening(self, dictionary):
        sampler = MonteCarloSampler(dictionary, seed=3)
        independent = sampler.appear_independent(
            FactPresent(Fact("R", ("a", "a"))),
            FactPresent(Fact("R", ("b", "b"))),
            samples=3000,
        )
        dependent = sampler.appear_independent(
            QueryTrue(q("Q() :- R('a', 'a')")),
            QueryTrue(q("P() :- R('a', x)")),
            samples=3000,
        )
        assert independent
        assert not dependent
