"""Tests for the pre-forked multi-worker audit fleet.

These boot a real router plus real worker processes
(:class:`~repro.service.fleet.FleetThread`) and talk to them over real
sockets, covering the PR's hard guarantees:

* a burst of identical requests on distinct connections costs exactly
  one computation *fleet-wide* (router coalescing + shared table);
* routing is deterministic: one fingerprint, one shard;
* ``stats`` aggregates every worker's mergeable metrics into one
  document with per-shard queue depths;
* drain-then-stop answers every in-flight request across multiple
  workers and reaps every worker process (no orphans);
* a crashed worker fails its in-flight requests with a *retryable*
  structured error, restarts, and re-serves the same fingerprint;
* saturation sheds with structured ``overloaded`` answers;
* a busy port is a one-line :class:`ReproError`, not a traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.bench import employee_schema
from repro.exceptions import ReproError
from repro.io import schema_to_dict
from repro.service import (
    AuditServiceClient,
    FleetCoalescer,
    FleetThread,
    parse_request,
    request_key,
)
from repro.service.protocol import ERROR_OVERLOADED, ERROR_WORKER_CRASHED


def _schema_doc(**sizes) -> dict:
    document = schema_to_dict(employee_schema(**sizes))
    document["tuple_probability"] = "1/4"
    return document


SCHEMA = _schema_doc()
SECRET = "S(n, p) :- Emp(n, d, p)"
VIEWS = {"bob": "V(n, d) :- Emp(n, d, p)"}

#: A larger schema whose ``leakage`` takes a few hundred ms — slow
#: enough to be reliably in flight when the test kills or drains.
SLOW_SCHEMA = _schema_doc(names=3)
SLOW_SECRETS = [
    "S(p) :- Emp(n0, d, p)",
    "S(p) :- Emp(n1, d, p)",
    "S(p) :- Emp(n2, d, p)",
    "S(n) :- Emp(n, d0, p)",
    "S(n) :- Emp(n, d1, p)",
    "S(n, p) :- Emp(n, d, p)",
]


def _fingerprint(document: dict) -> str:
    return hashlib.sha256(
        request_key(parse_request(document)).encode("utf8")
    ).hexdigest()


def _slow_request(secret: str) -> dict:
    return {
        "op": "leakage",
        "schema": SLOW_SCHEMA,
        "secret": secret,
        "views": VIEWS,
    }


def _wait_restart(fleet: FleetThread, shard: int, old_pid: int, timeout: float = 30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        pids = fleet.fleet.worker_pids
        if pids[shard] not in (old_pid, -1):
            return pids[shard]
        time.sleep(0.05)
    raise AssertionError(f"worker {shard} did not restart within {timeout}s")


def _assert_reaped(pids):
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


@pytest.fixture(scope="module")
def fleet():
    with FleetThread(workers=2, worker_threads=2) as running:
        yield running


@pytest.fixture(scope="module")
def client(fleet):
    with AuditServiceClient(*fleet.address) as connected:
        yield connected


class TestFleetBasics:
    def test_ping_reports_fleet_shape(self, client):
        result = client.call("ping")
        assert result["pong"] is True
        assert result["fleet"]["workers"] == 2

    def test_decide_matches_single_process_semantics(self, client):
        response = client.request("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
        assert response["ok"] is True
        assert response["result"]["verdict"] in (True, False, None)
        assert response["server"]["shard"] in (0, 1)

    def test_repeat_hits_the_fleet_cache(self, fleet, client):
        fields = dict(schema=SCHEMA, secret="S2(n) :- Emp(n, d, p)", views=VIEWS)
        first = client.request("decide", **fields)
        assert first["ok"] and not first["server"].get("fleet_cached")
        with AuditServiceClient(*fleet.address) as other:
            second = other.request("decide", **fields)
        assert second["ok"] is True
        assert second["server"]["cached"] is True
        assert second["server"]["fleet_cached"] is True
        assert second["result"] == first["result"]

    def test_routing_is_deterministic(self, client):
        fields = dict(schema=SCHEMA, secret="S3(p) :- Emp(n, d, p)", views=VIEWS)
        shards = {
            client.request("decide", **fields)["server"]["shard"] for _ in range(5)
        }
        assert len(shards) == 1

    def test_distinct_fingerprints_spread_over_shards(self, fleet):
        documents = [
            {"op": "decide", "schema": SCHEMA, "secret": f"Q{i}(n) :- Emp(n, d, p)", "views": VIEWS}
            for i in range(16)
        ]
        shards = {fleet.fleet._shard_for(_fingerprint(doc)).index for doc in documents}
        assert shards == {0, 1}

    def test_unknown_operation_is_a_structured_error(self, client):
        response = client.request("frobnicate")
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown-operation"
        assert client.ping()  # the connection survived

    def test_bad_json_is_a_structured_error(self, client):
        response = client.send_raw(b"{not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-json"
        assert client.ping()


class TestFleetCoalescing:
    def test_burst_of_duplicates_costs_one_computation_fleet_wide(self, fleet):
        fields = dict(
            schema=SCHEMA, secret="Sburst(n) :- Emp(n, d, p)", views=VIEWS
        )
        barrier = threading.Barrier(16)
        responses, failures = [], []

        def one() -> None:
            try:
                with AuditServiceClient(*fleet.address) as connection:
                    barrier.wait(timeout=30)
                    responses.append(connection.request("decide", **fields))
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(error)

        threads = [threading.Thread(target=one) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        assert len(responses) == 16
        assert all(response["ok"] for response in responses)
        fresh = [
            response
            for response in responses
            if not response["server"].get("coalesced")
            and not response["server"].get("cached")
        ]
        assert len(fresh) == 1
        duplicates = [r for r in responses if r is not fresh[0]]
        assert all(
            r["server"].get("fleet_coalesced") or r["server"].get("fleet_cached")
            for r in duplicates
        )
        # Every duplicate carries the owner's exact result.
        reference = json.dumps(fresh[0]["result"], sort_keys=True, default=str)
        assert all(
            json.dumps(r["result"], sort_keys=True, default=str) == reference
            for r in duplicates
        )


class TestFleetStats:
    def test_stats_aggregates_every_worker(self, fleet, client):
        client.request("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
        stats = client.stats()
        assert stats["totals"]["requests"] >= 1
        assert stats["totals"]["computed"] >= 1
        assert "decide" in stats["operations"]
        doc = stats["fleet"]
        assert doc["workers"] == 2
        assert doc["routing"] == "rendezvous/request-fingerprint"
        assert len(doc["shards"]) == 2
        for entry in doc["shards"]:
            assert entry["alive"] is True
            assert entry["queue_limit"] >= 1
            assert entry["outstanding"] >= 0
        assert doc["coalescer"]["cache_size"] >= 1

    def test_merged_latency_percentiles_are_present(self, client):
        for index in range(4):
            client.request(
                "decide",
                schema=SCHEMA,
                secret=f"Slat{index}(n) :- Emp(n, d, p)",
                views=VIEWS,
            )
        stats = client.stats()
        latency = stats["operations"]["decide"].get("latency_ms")
        assert latency is not None
        assert latency["count"] >= 4
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]


class TestFleetLifecycle:
    def test_drain_then_stop_answers_in_flight_requests(self):
        fleet = FleetThread(workers=2, worker_threads=2).start()
        try:
            documents = [_slow_request(secret) for secret in SLOW_SECRETS[:4]]
            shards = {
                fleet.fleet._shard_for(_fingerprint(doc)).index for doc in documents
            }
            assert shards == {0, 1}, "the slow requests must span both workers"
            pids = list(fleet.fleet.worker_pids)
            responses, failures = [], []

            def one(document: dict) -> None:
                try:
                    with AuditServiceClient(*fleet.address, timeout=120) as connection:
                        responses.append(
                            connection.request(document["op"], **{
                                key: value
                                for key, value in document.items()
                                if key != "op"
                            })
                        )
                except Exception as error:
                    failures.append(error)

            threads = [
                threading.Thread(target=one, args=(document,))
                for document in documents
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # the slow leakages are now in flight
            fleet.stop()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures
            assert len(responses) == 4
            assert all(response["ok"] for response in responses), responses
            _assert_reaped(pids)
        finally:
            fleet.stop()

    def test_worker_crash_fails_in_flight_and_restart_reserves_fingerprint(self):
        fleet = FleetThread(
            workers=2, worker_threads=2, result_cache_size=0, rewarm_requests=0
        ).start()
        try:
            document = _slow_request(SLOW_SECRETS[5])
            shard = fleet.fleet._shard_for(_fingerprint(document)).index
            victim = fleet.fleet.worker_pids[shard]
            holder = {}

            def one() -> None:
                with AuditServiceClient(*fleet.address, timeout=120) as connection:
                    holder["response"] = connection.request(
                        "leakage",
                        schema=document["schema"],
                        secret=document["secret"],
                        views=document["views"],
                    )

            thread = threading.Thread(target=one)
            thread.start()
            time.sleep(0.12)  # the leakage is in flight on the victim worker
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=60)
            response = holder["response"]
            assert response["ok"] is False
            assert response["error"]["code"] == ERROR_WORKER_CRASHED
            assert "retry" in response["error"]["message"]

            _wait_restart(fleet, shard, victim)
            with AuditServiceClient(*fleet.address, timeout=120) as connection:
                retry = connection.request(
                    "leakage",
                    schema=document["schema"],
                    secret=document["secret"],
                    views=document["views"],
                )
            assert retry["ok"] is True
            assert retry["server"]["shard"] == shard
            assert not retry["server"].get("cached")

            with AuditServiceClient(*fleet.address) as connection:
                stats = connection.stats()
            by_shard = {entry["shard"]: entry for entry in stats["fleet"]["shards"]}
            assert by_shard[shard]["restarts"] == 1
            assert by_shard[shard]["alive"] is True
        finally:
            fleet.stop()

    def test_saturated_shards_shed_with_structured_errors(self):
        fleet = FleetThread(
            workers=2,
            worker_threads=1,
            shard_queue_limit=1,
            connections_per_worker=1,
        ).start()
        try:
            responses = []
            lock = threading.Lock()

            def one(secret: str) -> None:
                with AuditServiceClient(*fleet.address, timeout=120) as connection:
                    response = connection.request(
                        "leakage", schema=SLOW_SCHEMA, secret=secret, views=VIEWS
                    )
                with lock:
                    responses.append(response)

            threads = [
                threading.Thread(target=one, args=(secret,))
                for secret in SLOW_SECRETS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert len(responses) == len(SLOW_SECRETS)
            shed = [r for r in responses if not r["ok"]]
            served = [r for r in responses if r["ok"]]
            assert served, "a saturated fleet must still serve some requests"
            assert shed, "six concurrent slow requests must overflow limit-1 shards"
            for response in shed:
                assert response["error"]["code"] == ERROR_OVERLOADED
                assert "saturated" in response["error"]["message"]
        finally:
            fleet.stop()


class TestBindErrors:
    def test_fleet_reports_busy_port_as_one_line_error(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ReproError, match="address already in use"):
                FleetThread(port=port, workers=2).start()
        finally:
            blocker.close()

    def test_serve_cli_exits_with_one_line_error(self, capsys):
        from repro.cli import main

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "address already in use" in captured.err
        assert "Traceback" not in captured.err


class TestFleetCoalescerTable:
    def test_claim_publish_cache_hit(self, tmp_path):
        with FleetCoalescer(str(tmp_path / "t.db"), owner=1) as table:
            assert table.claim("fp") is None  # first caller owns
            assert table.claim("fp") == ""  # second subscribes
            table.publish("fp", '{"ok": true}')
            assert table.claim("fp") == '{"ok": true}'
            assert table.lookup("fp") == '{"ok": true}'

    def test_abandon_reopens_the_claim(self, tmp_path):
        with FleetCoalescer(str(tmp_path / "t.db"), owner=1) as table:
            assert table.claim("fp") is None
            table.abandon("fp")
            assert table.claim("fp") is None  # ownership is claimable again

    def test_result_cache_is_bounded(self, tmp_path):
        with FleetCoalescer(str(tmp_path / "t.db"), owner=1, cache_size=3) as table:
            for index in range(6):
                assert table.claim(f"fp{index}") is None
                table.publish(f"fp{index}", f'"{index}"')
            stats = table.stats()
            assert stats["cached_results"] == 3
            assert table.lookup("fp5") is not None
            assert table.lookup("fp0") is None

    def test_forget_drops_a_published_result(self, tmp_path):
        with FleetCoalescer(str(tmp_path / "t.db"), owner=1) as table:
            assert table.claim("fp") is None
            table.publish("fp", '{"ok": true}')
            assert table.lookup("fp") is not None
            assert table.forget("fp") == 1
            assert table.lookup("fp") is None
            # The row is gone outright: the next caller owns a fresh claim.
            assert table.claim("fp") is None
            table.abandon("fp")
            assert table.forget("missing") == 0
            assert table.stats()["forgotten"] == 1

    def test_forget_drops_a_pending_claim(self, tmp_path):
        # A delta can land while a live-audit is still being computed;
        # forget must remove the pending row too, whatever its state.
        with FleetCoalescer(str(tmp_path / "t.db"), owner=1) as table:
            assert table.claim("fp") is None  # pending, never published
            assert table.forget("fp") == 1
            assert table.claim("fp") is None  # claimable again
            assert table.stats()["forgotten"] == 1


# ---------------------------------------------------------------------------
# Live sessions through the fleet
# ---------------------------------------------------------------------------
LIVE_SCHEMA = SCHEMA
LIVE_FACT = ["Emp", ["n0", "d0", "p0"]]
LIVE_OTHER = ["Emp", ["n1", "d1", "p1"]]


class TestFleetLive:
    def _create(self, client, name):
        result = client.call(
            "live-create",
            live=name,
            schema=LIVE_SCHEMA,
            secrets={"s": SECRET},
            views=VIEWS,
            facts=[LIVE_FACT],
        )
        assert result["created"] is True

    def test_live_ops_share_one_shard(self, client):
        self._create(client, "fleet-routing")
        shards = set()
        for _ in range(3):
            response = client.request("live-audit", live="fleet-routing")
            assert response["ok"] is True
            shards.add(response["server"]["shard"])
        delta = client.request("apply-delta", live="fleet-routing", add=[LIVE_OTHER])
        assert delta["ok"] is True
        shards.add(delta["server"]["shard"])
        assert len(shards) == 1

    def test_delta_forgets_fleet_cached_audits(self, fleet, client):
        self._create(client, "fleet-invalidate")
        first = client.request("live-audit", live="fleet-invalidate")
        assert first["ok"] and not first["server"].get("fleet_cached")
        with AuditServiceClient(*fleet.address) as other:
            second = other.request("live-audit", live="fleet-invalidate")
        assert second["server"]["fleet_cached"] is True
        assert second["result"]["fact_count"] == 1
        forgotten_before = fleet.fleet._coalescer.stats()["forgotten"]
        client.call("apply-delta", live="fleet-invalidate", add=[LIVE_OTHER])
        # The router forgot every fleet-cached answer of this session…
        assert fleet.fleet._coalescer.stats()["forgotten"] > forgotten_before
        # …so the next audit is recomputed against the new database.
        third = client.request("live-audit", live="fleet-invalidate")
        assert not third["server"].get("fleet_cached")
        assert third["result"]["fact_count"] == 2
        assert third["result"]["revision"] == 1

    def test_subscribe_relays_through_the_router(self, fleet, client):
        self._create(client, "fleet-subscribe")
        subscriber = AuditServiceClient(*fleet.address)
        stream = subscriber.subscribe("fleet-subscribe")
        received = []
        done = threading.Event()

        def _pump():
            for notification in stream:
                received.append(notification)
                if len(received) >= 2:
                    done.set()
                    return

        thread = threading.Thread(target=_pump, daemon=True)
        thread.start()
        try:
            client.call("apply-delta", live="fleet-subscribe", add=[LIVE_OTHER])
            client.call("apply-delta", live="fleet-subscribe", remove=[LIVE_FACT])
            assert done.wait(15.0), f"got {len(received)} notifications"
        finally:
            subscriber.interrupt()
            thread.join(5.0)
            subscriber.close()
        assert [note["event"] for note in received] == ["apply-delta", "apply-delta"]
        assert received[-1]["fact_count"] == 1
        final = client.call("live-audit", live="fleet-subscribe")
        assert received[-1]["revision"] == final["revision"]
        assert received[-1]["fact_count"] == final["fact_count"]

    def test_mutations_are_never_fleet_cached(self, client):
        self._create(client, "fleet-mutate")
        first = client.request("apply-delta", live="fleet-mutate", add=[LIVE_OTHER])
        second = client.request(
            "apply-delta", live="fleet-mutate", remove=[LIVE_OTHER]
        )
        assert first["ok"] and second["ok"]
        assert not first["server"].get("fleet_cached")
        assert not second["server"].get("fleet_cached")
        assert second["result"]["revision"] == 2
