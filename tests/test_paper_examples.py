"""Integration tests reproducing the paper's worked examples end-to-end.

Each test cites the example or table row it reproduces; together they are
the executable record of EXPERIMENTS.md.
"""

from fractions import Fraction

import pytest

from repro import (
    Dictionary,
    ExactEngine,
    Fact,
    classify_disclosure,
    decide_security,
    q,
    verify_security_probabilistically,
)
from repro.audit import DisclosureLevel
from repro.bench import binary_schema, employee_schema, table1_pairs
from repro.core import critical_tuples, positive_leakage, practical_security_check
from repro.probability import QueryAnswerIs, query_polynomial
from repro.relational import Domain, RelationSchema, Schema


class TestTable1:
    """Table 1: the spectrum of information disclosure."""

    @pytest.fixture(scope="class")
    def schema(self):
        return employee_schema()

    def test_security_verdicts(self, schema):
        for row in table1_pairs():
            decision = decide_security(row.secret, list(row.views), schema)
            assert decision.secure == row.expected_secure, f"row {row.row}"

    def test_disclosure_levels(self, schema):
        for row in table1_pairs():
            assessment = classify_disclosure(row.secret, list(row.views), schema)
            assert assessment.level is row.expected_level, f"row {row.row}"

    def test_practical_algorithm_classifies_all_rows_correctly(self, schema):
        # "this simple algorithm would correctly classify all examples in
        # this paper" (Section 4.2).
        for row in table1_pairs():
            quick = practical_security_check(row.secret, list(row.views))
            assert quick.certainly_secure == row.expected_secure, f"row {row.row}"


class TestExample42and43:
    """Examples 4.2 (non-security) and 4.3 (security) with exact numbers."""

    def test_example_4_2_probabilities(self, binary_ab_schema):
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        engine = ExactEngine(dictionary)
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        s_event = QueryAnswerIs(secret, [("a",)])
        v_event = QueryAnswerIs(view, [("b",)])
        assert engine.probability(s_event) == Fraction(3, 16)
        assert engine.conditional_probability(s_event, v_event) == Fraction(1, 3)
        assert not verify_security_probabilistically(secret, view, dictionary)

    def test_example_4_3_probabilities(self, binary_ab_schema):
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        engine = ExactEngine(dictionary)
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        s_event = QueryAnswerIs(secret, [("a",)])
        v_event = QueryAnswerIs(view, [("b",)])
        assert engine.probability(s_event) == Fraction(1, 4)
        assert engine.conditional_probability(s_event, v_event) == Fraction(1, 4)
        assert verify_security_probabilistically(secret, view, dictionary)


class TestExamples46and47:
    """Examples 4.6 and 4.7: critical-tuple evidence for (in)security."""

    def test_example_4_6(self, binary_ab_schema):
        view = q("V(x) :- R(x, y)")
        secret = q("S(y) :- R(x, y)")
        view_crit = critical_tuples(view, binary_ab_schema)
        secret_crit = critical_tuples(secret, binary_ab_schema)
        assert Fact("R", ("a", "b")) in view_crit
        assert view_crit & secret_crit
        assert not decide_security(secret, view, binary_ab_schema).secure

    def test_example_4_7(self, binary_ab_schema):
        view = q("V(x) :- R(x, 'b')")
        secret = q("S(y) :- R(y, 'a')")
        assert critical_tuples(secret, binary_ab_schema) == {
            Fact("R", ("a", "a")),
            Fact("R", ("b", "a")),
        }
        assert critical_tuples(view, binary_ab_schema) == {
            Fact("R", ("a", "b")),
            Fact("R", ("b", "b")),
        }
        assert decide_security(secret, view, binary_ab_schema).secure


class TestExample412:
    """Example 4.12: the polynomial f_Q and the product rule."""

    def test_polynomial_and_product(self):
        t1, t2, t3, t4 = (
            Fact("R", ("a", "a")),
            Fact("R", ("a", "b")),
            Fact("R", ("b", "a")),
            Fact("R", ("b", "b")),
        )
        names = {t1: "x1", t2: "x2", t3: "x3", t4: "x4"}
        poly = query_polynomial(q("Q() :- R('a', x), R(x, x)"), [t1, t2, t3, t4])
        assert poly.pretty(names) == "x1 + x2*x4 - x1*x2*x4"
        # f_{Q ∧ Q'} = f_Q × f_{Q'} for Q'():-R(b,a) (disjoint tuples).
        other = query_polynomial(q("Qp() :- R('b', 'a')"), [t3])
        from repro.cq import conjoin

        joint = query_polynomial(
            conjoin(q("Q() :- R('a', x), R(x, x)"), q("Qp() :- R('b', 'a')")),
            [t1, t2, t3, t4],
        )
        assert joint == poly * other


class TestSection21Example:
    """The boolean example of Section 2.1: possible-answers security is too weak."""

    def test_view_raises_probability_without_eliminating_answers(self):
        # A small hospital-sized instantiation: a handful of names and
        # phone numbers, one department, sparse data.
        schema = Schema(
            [
                RelationSchema(
                    "Employee",
                    ("name", "dept", "phone"),
                    {
                        "name": Domain.of("Jane", "Bob", "Ann"),
                        "dept": Domain.of("Shipping"),
                        "phone": Domain.of(1234567, 7654321, 5550000),
                    },
                )
            ],
        )
        dictionary = Dictionary.uniform(schema, Fraction(1, 20))
        secret = q("S() :- Employee('Jane', 'Shipping', 1234567)")
        view = q("V() :- Employee('Jane', 'Shipping', p), Employee(n, 'Shipping', 1234567)")
        engine = ExactEngine(dictionary)
        from repro.probability import QueryTrue

        s_event = QueryTrue(secret)
        v_event = QueryTrue(view)
        prior = engine.probability(s_event)
        posterior = engine.conditional_probability(s_event, v_event)
        # Both truth values of S remain possible given V...
        assert 0 < posterior < 1
        # ...but the probability has increased substantially: a disclosure
        # that a possible-answers criterion would miss entirely.
        assert posterior > 5 * prior


class TestTheorem410Example:
    """The subgoal image that is not critical (after Theorem 4.10)."""

    def test_not_critical(self):
        schema = Schema(
            [RelationSchema("R", tuple(f"a{i}" for i in range(5)))],
            domain=Domain.of("a", "b", "c"),
        )
        query = q("Q() :- R(x, y, z, z, u), R(x, x, x, y, y)")
        from repro.core import candidate_critical_facts, is_critical

        fact = Fact("R", ("a", "a", "b", "b", "c"))
        assert fact in candidate_critical_facts(query, schema)
        assert not is_critical(fact, query, schema)


class TestExample62and63:
    """Examples 6.2/6.3: minute leakage and the effect of collusion."""

    @pytest.fixture(scope="class")
    def dictionary(self):
        return Dictionary.uniform(employee_schema(), Fraction(1, 4))

    def test_leakage_ordering(self, dictionary):
        secret = q("S(n, p) :- Emp(n, d, p)")
        department = q("Vd(d) :- Emp(n, d, p)")
        name_department = q("Vnd(n, d) :- Emp(n, d, p)")
        department_phone = q("Vdp(d, p) :- Emp(n, d, p)")
        weak = positive_leakage(secret, department, dictionary).leakage
        stronger = positive_leakage(secret, name_department, dictionary).leakage
        collusion = positive_leakage(
            secret, [name_department, department_phone], dictionary
        ).leakage
        assert 0 < weak < stronger < collusion
