"""The sqlite3-backed fact store: round-trips, typing, loading, CLI.

The store must behave as a *set of facts* indistinguishable from an
in-memory :class:`Instance` — same membership, same counts, same values
back out (no affinity coercion) — while adding what instances lack:
file persistence, bulk loading and SQL execution for the sql engine.
"""

import json
import pickle
import sqlite3

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ReproError
from repro.relational import Fact, Instance
from repro.storage import FactStore, SQLiteFactStore
from repro.workload import InstanceSpec, generate_facts, generate_instance


class TestFactStoreProtocol:
    def test_instance_is_a_fact_store(self):
        assert isinstance(Instance.empty(), FactStore)
        assert isinstance(SQLiteFactStore(), FactStore)

    def test_to_instance_round_trip(self):
        facts = {Fact("R", (1, "a")), Fact("S", (2.5,)), Fact("R", (0, 0))}
        store = SQLiteFactStore.mirror(facts)
        assert store.to_instance() == Instance(facts)


class TestRoundTrip:
    def test_membership_len_iter(self):
        facts = [Fact("R", (1, 2)), Fact("R", (1, "a")), Fact("T", ())]
        store = SQLiteFactStore.mirror(facts)
        assert len(store) == 3
        assert set(store) == set(facts)
        assert Fact("R", (1, 2)) in store
        assert Fact("R", (2, 1)) not in store
        assert Fact("T", ()) in store
        assert "not a fact" not in store

    def test_values_keep_their_python_types(self):
        # The three affinity hazards: ints through TEXT, numeric strings
        # through INTEGER, ints through REAL.  A store must return
        # exactly what was put in.
        facts = [
            Fact("R", (1, "1")),
            Fact("R", (2, "x")),
            Fact("S", (1.5, 2)),
            Fact("S", (3.0, 4)),
        ]
        store = SQLiteFactStore.mirror(facts)
        values = {value for fact in store for value in fact.values}
        assert values == {1, "1", 2, "x", 1.5, 3.0, 4}
        assert {type(v) for v in values} == {int, str, float}

    def test_duplicates_collapse(self):
        store = SQLiteFactStore.mirror([Fact("R", (1,))] * 5)
        store.add(Fact("R", (1,)))
        assert len(store) == 1

    def test_mixed_arity_relation(self):
        store = SQLiteFactStore.mirror([Fact("R", (1,)), Fact("R", (1, 2))])
        assert len(store) == 2
        assert set(store.relation("R")) == {Fact("R", (1,)), Fact("R", (1, 2))}
        assert store.table("R", 1) != store.table("R", 2)
        assert store.table("R", 3) is None

    def test_bool_is_stored_as_int(self):
        # Fact("R", (True,)) == Fact("R", (1,)) already holds in memory;
        # the store keeps that equivalence.
        store = SQLiteFactStore.mirror([Fact("R", (True,))])
        assert Fact("R", (1,)) in store
        assert set(store) == {Fact("R", (1,))}

    def test_unstorable_values_are_rejected(self):
        store = SQLiteFactStore()
        with pytest.raises(ReproError, match="cannot be stored"):
            store.add(Fact("R", (None,)))
        with pytest.raises(ReproError):
            store.add(Fact("R", ((1, 2),)))
        # The failed load rolled back: nothing half-written.
        assert len(store) == 0
        assert Fact("R", (None,)) not in store


class TestNoAffinity:
    def test_columns_carry_no_declared_type(self):
        # NONE affinity is a correctness requirement: any declared type
        # makes SQLite coerce comparison operands (1 would match "1").
        store = SQLiteFactStore.mirror([Fact("R", (1, "a")), Fact("R", (2, "b"))])
        table = store.table("R", 2)
        (sql,) = [
            row[0]
            for row in store.execute(
                "SELECT sql FROM sqlite_master WHERE type = 'table' AND name = ?",
                (table,),
            )
        ]
        for affinity in ("INTEGER", "TEXT", "REAL", "NUMERIC", "BLOB"):
            assert affinity not in sql.upper()

    def test_int_and_numeric_string_never_compare_equal(self):
        # The membership probe over an all-int column must not match a
        # numeric-looking string, and vice versa.
        store = SQLiteFactStore.mirror([Fact("R", (1,)), Fact("R", (2,))])
        assert Fact("R", (1,)) in store
        assert Fact("R", ("1",)) not in store
        text = SQLiteFactStore.mirror([Fact("S", ("1",)), Fact("S", ("2",))])
        assert Fact("S", ("1",)) in text
        assert Fact("S", (1,)) not in text

    def test_int_and_numeric_string_coexist_as_distinct_facts(self):
        store = SQLiteFactStore.mirror([Fact("R", (1,))])
        store.add(Fact("R", ("1",)))
        assert set(store) == {Fact("R", (1,)), Fact("R", ("1",))}
        assert Fact("R", (1,)) in store and Fact("R", ("1",)) in store

    def test_int_float_equality_stays_numeric(self):
        # 1 == 1.0 in Python, so the store's UNIQUE constraint and
        # membership must treat them as one fact.
        store = SQLiteFactStore.mirror([Fact("R", (1,))])
        assert Fact("R", (1.0,)) in store
        store.add(Fact("R", (1.0,)))
        assert len(store) == 1


class TestPersistence:
    def test_reopen_restores_layout_and_facts(self, tmp_path):
        path = tmp_path / "facts.db"
        facts = {Fact("R", (1, "a")), Fact("R", (1, 2)), Fact("T", ())}
        with SQLiteFactStore(path) as store:
            store.load_facts(facts)
        with SQLiteFactStore(path) as reopened:
            assert set(reopened) == facts
            assert reopened.table("R", 2) is not None
            assert reopened.relations() == [("R", 2, 2), ("T", 0, 1)]
            reopened.add(Fact("S", (5,)))
            assert len(reopened) == 4

    def test_reopen_rejects_crafted_catalog_table_names(self, tmp_path):
        # Catalog names are interpolated into SQL text, so a store file
        # whose catalog was tampered with must not open at all.
        path = tmp_path / "evil.db"
        with SQLiteFactStore(path) as store:
            store.add(Fact("R", (1,)))
        connection = sqlite3.connect(str(path))
        connection.execute(
            "UPDATE repro_meta SET table_name = 'f0 WHERE 0; DROP TABLE f0; --'"
        )
        connection.commit()
        connection.close()
        with pytest.raises(ReproError, match="catalog table name"):
            SQLiteFactStore(path)

    def test_closed_store_raises(self, tmp_path):
        store = SQLiteFactStore(tmp_path / "facts.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            store.execute("SELECT 1")


class TestIndexes:
    def test_ensure_index_is_covering_and_idempotent(self):
        store = SQLiteFactStore.mirror([Fact("R", (1, 2, 3))])
        assert store.ensure_index("R", 3, [1]) is True
        assert store.ensure_index("R", 3, [1]) is False  # cached
        table = store.table("R", 3)
        (sql,) = [
            row[0]
            for row in store.execute(
                "SELECT sql FROM sqlite_master WHERE type = 'index' AND name = ?",
                (f"ix_{table}_1",),
            )
        ]
        # Leads with the probe position, appends the rest of the cover.
        assert "(c1, c0, c2)" in sql

    def test_ensure_index_rejects_bad_requests(self):
        store = SQLiteFactStore.mirror([Fact("R", (1, 2))])
        assert store.ensure_index("R", 2, []) is False
        assert store.ensure_index("R", 2, [7]) is False
        assert store.ensure_index("Missing", 2, [0]) is False

    def test_indexes_survive_mixed_type_inserts(self):
        # Columns are untyped, so a batch of new-typed values never
        # rebuilds the table (or its indexes).
        store = SQLiteFactStore.mirror([Fact("R", (1,))])
        assert store.ensure_index("R", 1, [0]) is True
        store.add(Fact("R", ("a",)))
        assert store.ensure_index("R", 1, [0]) is False  # still there
        assert set(store) == {Fact("R", (1,)), Fact("R", ("a",))}


class TestLoading:
    def test_load_json_list_shape(self, tmp_path):
        path = tmp_path / "facts.json"
        path.write_text(json.dumps([["Emp", "alice", 100], ["Dept", "HR"]]))
        store = SQLiteFactStore()
        assert store.load_json(path) == 2
        assert set(store) == {Fact("Emp", ("alice", 100)), Fact("Dept", ("HR",))}

    def test_load_json_mapping_shape_with_facts_key(self, tmp_path):
        path = tmp_path / "facts.json"
        path.write_text(json.dumps({"facts": {"Emp": [["alice", 100], ["bob", 101]]}}))
        store = SQLiteFactStore()
        assert store.load_json(path) == 2
        assert Fact("Emp", ("bob", 101)) in store

    def test_load_json_rejects_malformed_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([["Emp", 1], [2, 3]]))
        with pytest.raises(ReproError, match="relation"):
            SQLiteFactStore().load_json(path)
        path.write_text(json.dumps(42))
        with pytest.raises(ReproError, match="not a fact file"):
            SQLiteFactStore().load_json(path)

    def test_load_csv_coerces_numeric_cells(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("alice,100,2.5\nbob,101,3.5\n")
        store = SQLiteFactStore()
        assert store.load_csv(path, "Emp") == 2
        assert Fact("Emp", ("alice", 100, 2.5)) in store
        plain = SQLiteFactStore()
        plain.load_csv(path, "Emp", coerce=False)
        assert Fact("Emp", ("alice", "100", "2.5")) in plain

    def test_cli_load_subcommand(self, tmp_path, capsys):
        facts = tmp_path / "facts.json"
        facts.write_text(json.dumps({"Emp": [["alice", "HR"], ["bob", "Eng"]]}))
        rows = tmp_path / "extra.csv"
        rows.write_text("carol,Sales\n")
        db = tmp_path / "store.db"
        code = cli_main(
            ["load", "--store", str(db), str(facts), "--csv", f"Emp={rows}"]
        )
        assert code == 0
        assert "3 facts total" in capsys.readouterr().out
        with SQLiteFactStore(db) as store:
            assert len(store) == 3

    def test_cli_load_requires_a_source(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["load", "--store", str(tmp_path / "s.db")])

    def test_cli_load_missing_file_exits_2(self, tmp_path):
        code = cli_main(["load", "--store", str(tmp_path / "s.db"), "absent.json"])
        assert code == 2


class TestInstancePickling:
    def test_instance_pickles_without_its_sqlite_mirror(self):
        # The pruned-parallel criticality engine ships instances to
        # process-pool workers; a cached sqlite connection must not ride
        # along.
        from repro.cq import eval_engine_scope, evaluate, q

        instance = Instance.of(Fact("R", (1, 2)))
        with eval_engine_scope("sql"):
            evaluate(q("Q(x) :- R(x, y)"), instance)  # caches a mirror
        assert getattr(instance, "_sqlite_mirror") is not None
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance
        assert clone._sqlite_mirror is None


class TestLargeInstanceGenerator:
    def test_deterministic_and_sized(self):
        spec = InstanceSpec(seed=7, facts=500, domain_size=50)
        first = list(generate_facts(spec))
        second = list(generate_facts(spec))
        assert first == second
        assert len(first) == 500
        assert {f.relation for f in first} <= set(spec.relations)
        for fact in first:
            assert len(fact.values) == spec.relations[fact.relation]
            assert all(0 <= v < 50 for v in fact.values)

    def test_skew_concentrates_values(self):
        flat = InstanceSpec(seed=1, facts=4000, domain_size=100, skew=0.0)
        skewed = InstanceSpec(seed=1, facts=4000, domain_size=100, skew=3.0)

        def low_fraction(spec):
            values = [v for f in generate_facts(spec) for v in f.values]
            return sum(1 for v in values if v < 10) / len(values)

        assert low_fraction(skewed) > low_fraction(flat) + 0.3

    def test_relation_weights_bias_the_draw(self):
        spec = InstanceSpec(
            seed=2, facts=2000, relation_weights={"R": 10.0, "S": 0.0, "T": 0.0}
        )
        assert {f.relation for f in generate_facts(spec)} == {"R"}

    def test_generate_instance_has_set_semantics(self):
        spec = InstanceSpec(seed=3, facts=2000, domain_size=3)
        instance = generate_instance(spec)
        assert isinstance(instance, Instance)
        assert len(instance) < 2000  # tiny domain forces collisions

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ReproError):
            list(generate_facts(InstanceSpec(facts=-1)))
        with pytest.raises(ReproError):
            list(generate_facts(InstanceSpec(domain_size=0)))
        with pytest.raises(ReproError):
            list(generate_facts(InstanceSpec(relations={})))
        with pytest.raises(ReproError):
            list(
                generate_facts(
                    InstanceSpec(relation_weights={"R": 0, "S": 0, "T": 0})
                )
            )
