"""Unit tests for the multi-party collusion analysis."""

import pytest

from repro import q
from repro.core import analyse_collusion, largest_safe_view_set
from repro.exceptions import SecurityAnalysisError


class TestCollusionAnalysis:
    def test_all_views_secure_means_every_coalition_secure(self, manufacturing):
        secret = q("S(p, c) :- Cost(p, c)")
        views = {
            "supplier": q("V1(p, x, y) :- Part(p, x, y)"),
            "retailer": q("V2(p, f, s) :- Product(p, f, s)"),
            "tax": q("V3(p, l) :- Labor(p, l)"),
        }
        report = analyse_collusion(secret, views, manufacturing)
        assert report.secure_overall
        assert report.insecure_recipients == ()
        assert report.coalition_is_secure(["supplier", "retailer", "tax"])
        assert report.violating_coalitions() == []
        assert "learns nothing" in report.summary()

    def test_one_leaky_view_is_identified(self, emp_schema):
        # The secret is the phone list of the HR department: a full
        # name-department projection leaks (it shares HR critical tuples),
        # while a view restricted to the Management department does not.
        secret = q("S(n, p) :- Emp(n, HR, p)")
        views = {
            "bob": q("Vb(n, d) :- Emp(n, d, p)"),
            "carol": q("Vc(n) :- Emp(n, Mgmt, p)"),
        }
        report = analyse_collusion(secret, views, emp_schema)
        assert not report.secure_overall
        assert report.insecure_recipients == ("bob",)
        assert report.secure_recipients == ("carol",)
        assert not report.coalition_is_secure(["bob"])
        assert report.coalition_is_secure(["carol"])
        assert report.violating_coalitions() == [("bob",)]
        assert "NOT secure" in report.summary()

    def test_unknown_recipient_raises(self, emp_schema):
        report = analyse_collusion(
            q("S(n) :- Emp(n, HR, p)"), [q("V(n) :- Emp(n, Mgmt, p)")], emp_schema
        )
        with pytest.raises(SecurityAnalysisError):
            report.coalition_is_secure(["nobody"])

    def test_sequence_views_get_default_recipient_names(self, emp_schema):
        report = analyse_collusion(
            q("S(n) :- Emp(n, HR, p)"),
            [q("V(n) :- Emp(n, Mgmt, p)"), q("W(d) :- Emp(n, d, p)")],
            emp_schema,
        )
        assert report.recipients == ("user1", "user2")

    def test_requires_views(self, emp_schema):
        with pytest.raises(SecurityAnalysisError):
            analyse_collusion(q("S(n) :- Emp(n, HR, p)"), [], emp_schema)


class TestSafePublishingPlan:
    def test_keeps_only_individually_secure_views(self, emp_schema):
        secret = q("S(n, p) :- Emp(n, d, p)")
        candidates = [
            q("V1(n, d) :- Emp(n, d, p)"),   # leaks (shares critical tuples)
            q("V2(n) :- Emp(n, Mgmt, p)"),   # leaks (name+phone critical overlap)
            q("SafeView(d) :- Dept(d)"),
        ]
        # Add an unrelated relation so the third view type-checks.
        from repro.relational import RelationSchema

        schema = emp_schema.with_relation(RelationSchema("Dept", ("d",)))
        safe = largest_safe_view_set(secret, candidates, schema)
        assert [v.name for v in safe] == ["SafeView"]

    def test_empty_candidates(self, emp_schema):
        assert largest_safe_view_set(q("S(n) :- Emp(n, HR, p)"), [], emp_schema) == ()
