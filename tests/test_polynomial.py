"""Unit tests for multilinear query polynomials (Section 4.3)."""

from fractions import Fraction

import pytest

from repro import Dictionary, ExactEngine, q
from repro.exceptions import IntractableAnalysisError, ProbabilityError
from repro.probability import MultilinearPolynomial, QueryTrue, query_polynomial, truth_table
from repro.relational import Domain, Fact, RelationSchema, Schema

T1 = Fact("R", ("a", "a"))
T2 = Fact("R", ("a", "b"))
T3 = Fact("R", ("b", "a"))
T4 = Fact("R", ("b", "b"))
ALL_FACTS = [T1, T2, T3, T4]


@pytest.fixture
def example_412_polynomial() -> MultilinearPolynomial:
    return query_polynomial(q("Q() :- R('a', x), R(x, x)"), ALL_FACTS)


class TestPolynomialAlgebra:
    def test_zero_and_constant(self):
        assert MultilinearPolynomial.zero().is_zero()
        assert MultilinearPolynomial.constant(3).evaluate({}) == 3

    def test_variable_and_evaluation(self):
        poly = MultilinearPolynomial.variable(T1)
        assert poly.evaluate({T1: Fraction(1, 3)}) == Fraction(1, 3)

    def test_missing_assignment_raises(self):
        poly = MultilinearPolynomial.variable(T1)
        with pytest.raises(ProbabilityError):
            poly.evaluate({})

    def test_addition_and_subtraction(self):
        x = MultilinearPolynomial.variable(T1)
        y = MultilinearPolynomial.variable(T2)
        combined = x + y - x
        assert combined == y

    def test_multiplication_of_disjoint_polynomials(self):
        x = MultilinearPolynomial.variable(T1)
        y = MultilinearPolynomial.variable(T2)
        product = x * y
        assert product.coefficient([T1, T2]) == 1

    def test_multiplication_with_shared_variables_is_rejected(self):
        x = MultilinearPolynomial.variable(T1)
        with pytest.raises(ProbabilityError):
            _ = x * x

    def test_substitute_shannon_expansion(self):
        poly = MultilinearPolynomial(
            {frozenset({T1}): Fraction(1), frozenset({T1, T2}): Fraction(-1)}
        )
        assert poly.substitute(T1, 0).is_zero()
        at_one = poly.substitute(T1, 1)
        assert at_one.coefficient([]) == 1
        assert at_one.coefficient([T2]) == -1

    def test_pretty_renders_deterministically(self, example_412_polynomial):
        names = {T1: "x1", T2: "x2", T3: "x3", T4: "x4"}
        assert example_412_polynomial.pretty(names) == "x1 + x2*x4 - x1*x2*x4"


class TestQueryPolynomial:
    def test_example_4_12_coefficients(self, example_412_polynomial):
        poly = example_412_polynomial
        assert poly.coefficient([T1]) == 1
        assert poly.coefficient([T2, T4]) == 1
        assert poly.coefficient([T1, T2, T4]) == -1
        assert poly.coefficient([T3]) == 0

    def test_degree_reflects_critical_tuples(self, example_412_polynomial):
        # Proposition 4.13(2): x_i has degree 1 iff t_i is critical.
        assert example_412_polynomial.degree_in(T1) == 1
        assert example_412_polynomial.degree_in(T2) == 1
        assert example_412_polynomial.degree_in(T4) == 1
        assert example_412_polynomial.degree_in(T3) == 0

    def test_polynomial_matches_engine_probability(self):
        schema = Schema([RelationSchema("R", ("x", "y"))], domain=Domain.of("a", "b"))
        dictionary = Dictionary.uniform(schema, Fraction(1, 3))
        query = q("Q() :- R('a', x), R(x, x)")
        poly = query_polynomial(query, ALL_FACTS)
        engine = ExactEngine(dictionary)
        assignment = {fact: dictionary.probability_of(fact) for fact in ALL_FACTS}
        assert poly.evaluate(assignment) == engine.probability(QueryTrue(query))

    def test_product_rule_for_disjoint_queries(self):
        # Example 4.12 continued: Q' :- R(b, a) depends on a disjoint tuple set,
        # so f_{Q ∧ Q'} = f_Q × f_{Q'}.
        from repro.cq import conjoin

        query = q("Q() :- R('a', x), R(x, x)")
        other = q("Qp() :- R('b', 'a')")
        f_q = query_polynomial(query, [T1, T2, T4])
        f_qp = query_polynomial(other, [T3])
        f_joint = query_polynomial(conjoin(query, other), ALL_FACTS)
        assert f_joint == f_q * f_qp

    def test_truth_table_indexing(self):
        table = truth_table(q("Q() :- R('a', 'a')"), [T1, T2])
        # Masks: 0 -> {}, 1 -> {T1}, 2 -> {T2}, 3 -> {T1, T2}.
        assert table == [False, True, False, True]

    def test_size_guard(self):
        with pytest.raises(IntractableAnalysisError):
            query_polynomial(q("Q() :- R(x, y)"), ALL_FACTS, max_facts=2)

    def test_multilinearity(self, example_412_polynomial):
        # Proposition 4.13(1): every variable has degree <= 1; with monomials
        # stored as sets this reduces to every fact appearing at most once per
        # monomial, which holds by construction — check the public view of it.
        for monomial in example_412_polynomial.coefficients:
            assert len(monomial) == len(set(monomial))

    def test_monotone_coefficient_property(self, example_412_polynomial):
        # Proposition 4.13(4): for a monotone query, the coefficient of x4 as a
        # polynomial in the others is non-negative on [0,1]^n.
        coefficient = example_412_polynomial.restricted_coefficient_of(T4)
        for x1 in (Fraction(0), Fraction(1, 2), Fraction(1)):
            for x2 in (Fraction(0), Fraction(1, 2), Fraction(1)):
                value = coefficient.evaluate({T1: x1, T2: x2, T3: 0, T4: 0})
                assert value >= 0
