"""Tests for the adversary posterior-belief module.

The headline case is the introduction's collusion attack: after seeing
the (name, department) and (department, phone) projections, the
adversary can guess a person's phone number with probability 1/k where k
is the number of phones observed in that person's department — "a 25%
chance" when four people share the department.
"""

from fractions import Fraction

import pytest

from repro import Dictionary, q
from repro.core import (
    decide_security,
    guessing_report,
    posterior_answer_distribution,
    row_posteriors,
)
from repro.exceptions import SecurityAnalysisError
from repro.relational import Domain, RelationSchema, Schema


@pytest.fixture
def binary_dictionary(binary_ab_schema):
    return Dictionary.uniform(binary_ab_schema, Fraction(1, 2))


class TestPosteriorDistribution:
    def test_posteriors_sum_to_one(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        posterior = posterior_answer_distribution(
            secret, view, [("a",)], binary_dictionary
        )
        assert sum(posterior.values()) == 1

    def test_example_4_2_posterior(self, binary_dictionary):
        # P[S = {(a)} | V = {(b)}] = 1/3, as computed in Example 4.2.
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        posterior = posterior_answer_distribution(
            secret, view, [("b",)], binary_dictionary
        )
        assert posterior[frozenset({("a",)})] == Fraction(1, 3)

    def test_secure_pair_posterior_equals_prior(self, binary_dictionary):
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        posterior = posterior_answer_distribution(
            secret, view, [("b",)], binary_dictionary
        )
        # For the secure pair of Example 4.3 the posterior of S = {(a)} stays 1/4.
        assert posterior[frozenset({("a",)})] == Fraction(1, 4)

    def test_impossible_observation_rejected(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, x)")
        with pytest.raises(SecurityAnalysisError):
            # 'c' is outside the domain, so the observation has probability 0.
            posterior_answer_distribution(secret, view, [("c",)], binary_dictionary)

    def test_answer_count_mismatch_rejected(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        views = [q("V(x) :- R(x, y)"), q("W(y) :- R(x, y)")]
        with pytest.raises(SecurityAnalysisError):
            posterior_answer_distribution(secret, views, [[("a",)]], binary_dictionary)


class TestRowPosteriors:
    def test_row_posteriors_contain_priors(self, binary_dictionary):
        secret = q("S(y) :- R(x, y)")
        view = q("V(x) :- R(x, y)")
        table = row_posteriors(secret, view, [("a",)], binary_dictionary)
        prior, posterior = table[("a",)]
        # P[some tuple ends in 'a'] = 1 − (1/2)² = 3/4 under P(t) = 1/2.
        assert prior == Fraction(3, 4)
        # Observing V = {(a)} (only row 'a' occupied) *changes* the belief —
        # here it lowers it to 2/3, another face of the Example 4.2 dependence.
        assert posterior == Fraction(2, 3)
        assert posterior != prior


class TestIntroductionCollusionAttack:
    """The 'guess the phone number with a 25% chance' argument."""

    @pytest.fixture
    def hr_schema(self) -> Schema:
        # One department, four phones, one person of interest plus a colleague.
        return Schema(
            [
                RelationSchema(
                    "Emp",
                    ("name", "dept", "phone"),
                    {
                        "name": Domain.of("alice", "bob"),
                        "dept": Domain.of("hr"),
                        "phone": Domain.of("x1", "x2", "x3", "x4"),
                    },
                )
            ]
        )

    def test_collusion_gives_one_in_k_guess(self, hr_schema):
        dictionary = Dictionary.uniform(hr_schema, Fraction(1, 8))
        secret = q("S(n, p) :- Emp(n, d, p)")
        name_department = q("Vnd(n, d) :- Emp(n, d, p)")
        department_phone = q("Vdp(d, p) :- Emp(n, d, p)")

        # Published answers: alice and bob are in HR, and the department's
        # phones are x1..x4 (four people's worth of phones).
        published_nd = [("alice", "hr"), ("bob", "hr")]
        published_dp = [("hr", "x1"), ("hr", "x2"), ("hr", "x3"), ("hr", "x4")]

        report = guessing_report(
            secret,
            [name_department, department_phone],
            [published_nd, published_dp],
            dictionary,
            restrict_to_rows=[("alice", p) for p in ("x1", "x2", "x3", "x4")],
        )
        # By symmetry each of alice's four candidate phones is equally likely,
        # so the adversary's best guess succeeds with probability >= 1/4 —
        # the introduction's "25% chance".
        assert report.best_row is not None
        assert report.posterior >= Fraction(1, 4)
        assert report.amplification is not None and report.amplification > 1
        # All four candidate rows have the same posterior (symmetry).
        posteriors = {
            row: value[1]
            for row, value in report.rows.items()
        }
        assert len(set(posteriors.values())) == 1
        assert "best guess" in report.summary()

    def test_perfectly_secure_view_gives_no_advantage(self, hr_schema):
        dictionary = Dictionary.uniform(hr_schema, Fraction(1, 8))
        secret = q("S(p) :- Emp('alice', d, p)")
        view = q("V(p) :- Emp('bob', d, p)")
        assert decide_security(secret, view, hr_schema).secure
        report = guessing_report(secret, view, [("x1",)], dictionary)
        prior, posterior = report.rows[report.best_row]
        assert prior == posterior
