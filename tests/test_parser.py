"""Unit tests for the datalog query parser."""

import pytest

from repro.cq import Constant, Variable, parse_atom, parse_query, parse_term, q
from repro.exceptions import ParseError


class TestTermParsing:
    def test_lowercase_identifier_is_variable(self):
        assert parse_term("x") == Variable("x")
        assert parse_term("name") == Variable("name")

    def test_uppercase_identifier_is_constant(self):
        assert parse_term("Mgmt") == Constant("Mgmt")

    def test_quoted_strings_are_constants(self):
        assert parse_term("'a'") == Constant("a")
        assert parse_term('"Jane Doe"') == Constant("Jane Doe")

    def test_numbers_are_constants(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("-7") == Constant(-7)
        assert parse_term("3.5") == Constant(3.5)

    def test_multiple_terms_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x y")


class TestAtomParsing:
    def test_simple_atom(self):
        atom = parse_atom("R(x, 'a', 3)")
        assert atom.relation == "R"
        assert atom.terms == (Variable("x"), Constant("a"), Constant(3))

    def test_anonymous_variables_are_distinct(self):
        atom = parse_atom("R(-, -)")
        assert atom.terms[0] != atom.terms[1]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")


class TestQueryParsing:
    def test_paper_table1_view(self):
        query = parse_query("V2(n, d) :- Emp(n, d, p)")
        assert query.name == "V2"
        assert query.arity == 2
        assert query.body[0].relation == "Emp"

    def test_boolean_query(self):
        query = parse_query("S() :- R('a', x), R(x, x)")
        assert query.is_boolean
        assert len(query.body) == 2

    def test_comparisons(self):
        query = parse_query("Q(x) :- R1(x, 'a', y), R2(y, 'b', 'c'), x < y, y != 'c'")
        assert len(query.comparisons) == 2
        assert {c.op for c in query.comparisons} == {"<", "!="}

    def test_uppercase_constant_in_body(self):
        query = parse_query("V4(n) :- Emp(n, Mgmt, p)")
        assert Constant("Mgmt") in query.body[0].terms

    def test_q_alias(self):
        assert q("Q(x) :- R(x)").name == "Q"

    def test_missing_separator_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) R(x)")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x :- R(x)")

    def test_invalid_character_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x) @ S(x)")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x) S(y)")

    def test_unsafe_head_variable_raises_query_error(self):
        # Parsed fine syntactically, but the query constructor rejects it.
        with pytest.raises(Exception):
            parse_query("Q(z) :- R(x, y)")

    def test_whitespace_is_flexible(self):
        query = parse_query("  Q ( x )   :-   R ( x ,  y ) ,  x != y  ")
        assert query.arity == 1

    def test_roundtrip_through_repr_mentions_subgoals(self):
        query = parse_query("Q(x) :- R(x, y), S(y)")
        assert "R" in repr(query) and "S" in repr(query)
