"""Tests for the disclosure-audit service (protocol, server, clients).

The server tests boot a real daemon on an ephemeral port via
:class:`~repro.service.server.ServerThread` and talk to it over real
sockets — the malformed-request tests in particular assert the contract
of ISSUE satellite 4: every bad input yields a *structured* error and
neither the connection nor the server dies.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading

import pytest

from repro.bench import employee_schema
from repro.io import schema_to_dict
from repro.service import (
    AsyncAuditServiceClient,
    AuditServiceClient,
    ProtocolError,
    ServerThread,
    ServiceError,
    parse_request,
    request_key,
)
from repro.service.metrics import ServiceMetrics, merge_snapshots, percentile
from repro.service.protocol import (
    ERROR_ANALYSIS,
    ERROR_BAD_JSON,
    ERROR_INVALID_REQUEST,
    ERROR_OVERLOADED,
    ERROR_PAYLOAD_TOO_LARGE,
    ERROR_UNKNOWN_OPERATION,
    decode_message,
    encode_message,
    session_key,
)


def _schema_doc(**sizes) -> dict:
    document = schema_to_dict(employee_schema(**sizes))
    document["tuple_probability"] = "1/4"
    return document


SCHEMA = _schema_doc()
SECRET = "S(n, p) :- Emp(n, d, p)"
VIEWS = {"bob": "V(n, d) :- Emp(n, d, p)"}
SECURE_SECRET = "S4(n) :- Emp(n, HR, p)"
SECURE_VIEWS = {"bob": "V4(n) :- Emp(n, Mgmt, p)"}


@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=4) as running:
        yield running


@pytest.fixture()
def client(server):
    with AuditServiceClient(*server.address) as connected:
        yield connected


# ---------------------------------------------------------------------------
# Protocol envelope validation
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request([1, 2, 3])
        assert excinfo.value.code == ERROR_INVALID_REQUEST

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError):
            parse_request({"schema": SCHEMA})

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "frobnicate"})
        assert excinfo.value.code == ERROR_UNKNOWN_OPERATION

    def test_rejects_missing_schema(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "decide", "secret": SECRET, "views": ["V(n) :- Emp(n, d, p)"]})
        assert excinfo.value.code == ERROR_INVALID_REQUEST
        assert "schema" in str(excinfo.value)

    def test_rejects_empty_views(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "decide", "schema": SCHEMA, "secret": SECRET, "views": []})

    def test_rejects_bad_id(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "ping", "id": {"nested": True}})

    def test_plan_requires_secrets(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "plan", "schema": SCHEMA, "views": VIEWS})
        assert "secrets" in str(excinfo.value)

    def test_knowledge_requires_kind(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {
                    "op": "with_knowledge",
                    "schema": SCHEMA,
                    "secret": SECRET,
                    "views": VIEWS,
                    "knowledge": {"keys": {}},
                }
            )

    def test_control_ops_need_no_schema(self):
        for op in ("ping", "stats", "shutdown"):
            assert parse_request({"op": op}).is_control

    def test_request_key_ignores_id(self):
        base = {"op": "decide", "schema": SCHEMA, "secret": SECRET, "views": VIEWS}
        one = parse_request({**base, "id": 1})
        two = parse_request({**base, "id": "two"})
        assert request_key(one) == request_key(two)

    def test_request_key_distinguishes_views(self):
        base = {"op": "decide", "schema": SCHEMA, "secret": SECRET}
        one = parse_request({**base, "views": VIEWS})
        two = parse_request({**base, "views": SECURE_VIEWS})
        assert request_key(one) != request_key(two)

    def test_session_key_groups_by_schema_and_engine(self):
        base = {"op": "decide", "schema": SCHEMA, "secret": SECRET, "views": VIEWS}
        one = parse_request(base)
        two = parse_request({**base, "secret": SECURE_SECRET})
        assert session_key(one) == session_key(two)
        other_engine = parse_request({**base, "criticality_engine": "minimal"})
        assert session_key(one) != session_key(other_engine)

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(b"{not json\n")
        assert excinfo.value.code == ERROR_BAD_JSON

    def test_decode_rejects_oversized(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(b"x" * 100, max_payload=50)
        assert excinfo.value.code == ERROR_PAYLOAD_TOO_LARGE

    def test_encode_round_trip(self):
        document = {"op": "ping", "id": 7}
        assert decode_message(encode_message(document)) == document


class TestMetrics:
    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([5.0], 95) == 5.0

    def test_snapshot_totals(self):
        metrics = ServiceMetrics()
        metrics.observe("decide", "computed", 0.01)
        metrics.observe("decide", "coalesced", 0.001)
        metrics.observe("decide", "cached", 0.0001)
        metrics.observe("quick", "error")
        snapshot = metrics.snapshot()
        assert snapshot["totals"]["requests"] == 4
        assert snapshot["totals"]["duplicate_hits"] == 2
        assert snapshot["totals"]["coalescing_hit_rate"] == 0.25
        assert snapshot["operations"]["decide"]["latency_ms"]["count"] == 3

    def test_rejects_unknown_outcome(self):
        with pytest.raises(ValueError):
            ServiceMetrics().observe("decide", "mystery")

    def test_merged_percentiles_match_a_single_combined_stream(self):
        # Satellite: merging per-worker mergeable snapshots must lose no
        # percentile fidelity versus one stream that saw every sample.
        rng = random.Random(20260808)
        observations = [
            (f"op{index % 3}", outcome, rng.expovariate(1.0 / 20.0))
            for index in range(3000)
            for outcome in (rng.choice(("computed", "coalesced", "cached")),)
        ]
        workers = [ServiceMetrics() for _ in range(4)]
        combined = ServiceMetrics()
        for index, (op, outcome, elapsed_ms) in enumerate(observations):
            workers[index % 4].observe(op, outcome, elapsed_ms / 1000.0)
            combined.observe(op, outcome, elapsed_ms / 1000.0)
        merged = merge_snapshots(worker.mergeable_snapshot() for worker in workers)
        reference = combined.snapshot()
        assert merged["totals"] == {
            key: value
            for key, value in reference["totals"].items()
            if key != "uptime_seconds"
        }
        for op, op_doc in reference["operations"].items():
            merged_latency = merged["operations"][op]["latency_ms"]
            for quantile in ("count", "mean", "p50", "p95", "p99", "max"):
                assert merged_latency[quantile] == pytest.approx(
                    op_doc["latency_ms"][quantile], abs=1e-3
                ), f"{op} {quantile} diverged after the merge"

    def test_merge_of_one_snapshot_is_the_snapshot(self):
        metrics = ServiceMetrics()
        metrics.observe("decide", "computed", 0.01)
        metrics.observe("decide", "shed")
        merged = merge_snapshots([metrics.mergeable_snapshot()])
        snapshot = metrics.snapshot()
        assert merged["totals"]["requests"] == snapshot["totals"]["requests"]
        assert merged["operations"]["decide"]["latency_ms"] == (
            snapshot["operations"]["decide"]["latency_ms"]
        )


# ---------------------------------------------------------------------------
# End-to-end operations
# ---------------------------------------------------------------------------
class TestOperations:
    def test_ping(self, client):
        assert client.ping() is True

    def test_decide_disclosure(self, client):
        result = client.call("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
        assert result["verdict"] is False
        assert result["kind"] == "decide"
        assert result["common_critical_count"] > 0

    def test_decide_secure(self, client):
        result = client.call(
            "decide", schema=SCHEMA, secret=SECURE_SECRET, views=SECURE_VIEWS
        )
        assert result["verdict"] is True

    def test_quick(self, client):
        result = client.call(
            "quick", schema=SCHEMA, secret=SECURE_SECRET, views=SECURE_VIEWS
        )
        assert result["kind"] == "quick-check"

    def test_collusion(self, client):
        result = client.call(
            "collusion",
            schema=SCHEMA,
            secret=SECRET,
            views={"bob": "V(n, d) :- Emp(n, d, p)", "carol": "W(d, p) :- Emp(n, d, p)"},
        )
        assert result["verdict"] is False
        assert "bob" in result["insecure_recipients"]

    def test_leakage(self, client):
        result = client.call("leakage", schema=SCHEMA, secret=SECRET, views=VIEWS)
        assert result["verdict"] is False
        assert 0 < result["leakage"]["float"] <= 1

    def test_verify(self, client):
        result = client.call(
            "verify", schema=SCHEMA, secret=SECURE_SECRET, views=SECURE_VIEWS
        )
        assert result["verdict"] is True
        assert result["engine"] == "exact"

    def test_with_knowledge_keys(self, client):
        result = client.call(
            "with_knowledge",
            schema=SCHEMA,
            secret=SECRET,
            views=VIEWS,
            knowledge={"kind": "keys", "keys": {"Emp": [0]}},
        )
        assert result["kind"] == "with-knowledge"
        assert result["conclusive"] is True

    def test_with_knowledge_cardinality(self, client):
        result = client.call(
            "with_knowledge",
            schema=SCHEMA,
            secret=SECURE_SECRET,
            views=SECURE_VIEWS,
            knowledge={"kind": "cardinality", "comparison": "at_most", "count": 3},
        )
        assert result["kind"] == "with-knowledge"

    def test_plan(self, client):
        result = client.call(
            "plan",
            schema=SCHEMA,
            secrets={"hr": "S(n) :- Emp(n, HR, p)", "pairs": SECRET},
            views={"bob": "V(n) :- Emp(n, Mgmt, p)", "carol": "W(n, d) :- Emp(n, d, p)"},
        )
        assert result["verdict"] is False
        entries = {(e["secret"], e["recipient"]): e["secure"] for e in result["entries"]}
        assert entries[("hr", "bob")] is True
        assert entries[("pairs", "carol")] is False

    def test_audit_includes_observability(self, client):
        result = client.call("audit", schema=SCHEMA, secret=SECRET, views=VIEWS)
        assert result["all_secure"] is False
        assert result["verdict"] is False  # the uniform field every op carries
        assert result["findings"][0]["disclosure"]
        observability = result["observability"]
        assert "critical_tuple_cache" in observability
        assert observability["engines"]["verification"] == "exact"

    def test_dictionary_override(self, client):
        result = client.call(
            "leakage",
            schema=SCHEMA,
            secret=SECRET,
            views=VIEWS,
            dictionary={"tuple_probability": "1/2"},
        )
        assert result["kind"] == "leakage"

    def test_stats_reports_sessions(self, client):
        client.call("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
        stats = client.stats()
        assert stats["totals"]["requests"] > 0
        assert stats["queue_limit"] >= 1
        assert any(s["engine"] == "exact" for s in stats["sessions"])
        # quantitative ops ran on this schema, so kernel counters surface
        assert any("kernels" in s for s in stats["sessions"])

    def test_repeat_request_hits_result_cache(self, client):
        fields = dict(schema=SCHEMA, secret=SECURE_SECRET, views=SECURE_VIEWS)
        first = client.request("decide", **fields)
        second = client.request("decide", **fields)
        assert first["ok"] and second["ok"]
        assert second["server"]["cached"] is True
        assert second["result"] == first["result"]


# ---------------------------------------------------------------------------
# Malformed requests must not kill the connection or the server
# ---------------------------------------------------------------------------
class TestMalformedRequests:
    def test_bad_json_keeps_connection(self, client):
        response = client.send_raw(b"this is not json\n")
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_BAD_JSON
        assert client.ping() is True  # same connection still serves

    def test_unhashable_op_keeps_connection(self, client):
        # A dict-valued op crashed the pre-parse op lookup once; it must
        # yield a structured error like every other malformed envelope.
        response = client.send_raw(
            json.dumps({"op": {"nested": True}}).encode() + b"\n"
        )
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_INVALID_REQUEST
        assert client.ping() is True

    def test_unknown_operation(self, client):
        response = client.request("escalate", schema=SCHEMA)
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_UNKNOWN_OPERATION
        assert client.ping() is True

    def test_missing_schema_field(self, client):
        response = client.request("decide", secret=SECRET, views=VIEWS)
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_INVALID_REQUEST
        assert "schema" in response["error"]["message"]
        assert client.ping() is True

    def test_unparsable_query_is_analysis_error(self, client):
        response = client.request(
            "decide", schema=SCHEMA, secret="not a datalog query", views=VIEWS
        )
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_ANALYSIS
        assert client.ping() is True

    def test_bad_engine_is_analysis_error(self, client):
        response = client.request(
            "decide", schema=SCHEMA, secret=SECRET, views=VIEWS, engine="quantum"
        )
        assert response["ok"] is False
        assert response["error"]["code"] == ERROR_ANALYSIS

    def test_service_error_raised_by_call(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call("decide", schema=SCHEMA, secret="broken(", views=VIEWS)
        assert excinfo.value.code == ERROR_ANALYSIS

    def test_oversized_payload(self):
        # A dedicated server with a tiny payload bound: an oversized line
        # below the stream limit earns a structured error and the
        # connection keeps serving.
        with ServerThread(workers=1, max_payload=2048) as server:
            with AuditServiceClient(*server.address) as client:
                padding = "x" * 4000
                response = client.request("ping", padding=padding)
                assert response["ok"] is False
                assert response["error"]["code"] == ERROR_PAYLOAD_TOO_LARGE
                assert client.ping() is True
                # Far beyond the stream limit the framing is lost: the
                # server answers once, drops that connection, survives.
                with AuditServiceClient(*server.address) as flooder:
                    response = flooder.request("ping", padding="y" * 50000)
                    assert response["ok"] is False
                    assert response["error"]["code"] == ERROR_PAYLOAD_TOO_LARGE
                assert client.ping() is True

    def test_server_survives_abrupt_disconnect(self, server, client):
        raw = socket.create_connection(server.address)
        raw.sendall(b'{"op": "ping"}\n')
        raw.close()  # vanish without reading the response
        assert client.ping() is True

    def test_envelope_errors_attributed_to_named_op(self):
        with ServerThread(workers=1) as server:
            with AuditServiceClient(*server.address) as client:
                client.request("decide", secret=SECRET, views=VIEWS)  # no schema
                stats = client.stats()
            assert stats["operations"]["decide"]["error"] == 1
            assert "unknown" not in stats["operations"]


# ---------------------------------------------------------------------------
# Coalescing and load shedding
# ---------------------------------------------------------------------------
def _burst(address, count, document):
    """Fire `count` identical requests concurrently; return the envelopes."""

    async def _run():
        clients = [AsyncAuditServiceClient(*address) for _ in range(count)]
        try:
            return await asyncio.gather(
                *(client.request(**document) for client in clients)
            )
        finally:
            for client in clients:
                await client.close()

    return asyncio.run(_run())


class TestCoalescing:
    def test_identical_burst_computes_once(self):
        with ServerThread(workers=2) as server:
            count = 12
            responses = _burst(
                server.address,
                count,
                dict(op="decide", schema=SCHEMA, secret=SECRET, views=VIEWS),
            )
            assert all(r["ok"] for r in responses)
            verdicts = {json.dumps(r["result"]["verdict"]) for r in responses}
            assert verdicts == {"false"}
            duplicates = sum(
                r["server"]["coalesced"] or r["server"]["cached"] for r in responses
            )
            assert duplicates >= count - 1
            snapshot = server.server.metrics.snapshot()
            assert snapshot["totals"]["duplicate_hits"] >= count - 1
            assert snapshot["operations"]["decide"]["computed"] == 1

    def test_distinct_requests_not_coalesced(self):
        with ServerThread(workers=2) as server:
            with AuditServiceClient(*server.address) as client:
                first = client.request("decide", schema=SCHEMA, secret=SECRET, views=VIEWS)
                second = client.request(
                    "decide", schema=SCHEMA, secret=SECURE_SECRET, views=SECURE_VIEWS
                )
            assert first["server"] == {"coalesced": False, "cached": False,
                                       "elapsed_ms": first["server"]["elapsed_ms"]}
            assert second["server"]["cached"] is False


class TestLoadShedding:
    def test_overloaded_requests_get_structured_error(self):
        # One worker, queue depth 1: concurrent *distinct* slow requests
        # beyond the first must be shed with an `overloaded` error.
        with ServerThread(workers=1, queue_limit=1) as server:
            slow = dict(
                op="verify",
                schema=SCHEMA,
                secret=SECRET,
                views=VIEWS,
                engine="sampling",
                options={"samples": 30000},
            )

            async def _run():
                clients = [AsyncAuditServiceClient(*server.address) for _ in range(3)]
                try:
                    tasks = []
                    for index, client in enumerate(clients):
                        document = dict(slow)
                        # distinct seeds -> distinct request keys -> no coalescing
                        document["options"] = {**slow["options"], "seed": index}
                        tasks.append(asyncio.create_task(client.request(**document)))
                        await asyncio.sleep(0.05)
                    return await asyncio.gather(*tasks)
                finally:
                    for client in clients:
                        await client.close()

            responses = asyncio.run(_run())
            outcomes = [r["ok"] for r in responses]
            assert outcomes[0] is True
            shed = [r for r in responses if not r["ok"]]
            assert shed, "expected at least one request to be shed"
            assert all(r["error"]["code"] == ERROR_OVERLOADED for r in shed)
            # the daemon survives and recovers
            with AuditServiceClient(*server.address) as client:
                assert client.ping() is True
                assert client.stats()["totals"]["shed"] >= 1


class TestLifecycle:
    def test_shutdown_request_stops_server(self):
        server = ServerThread(workers=1).start()
        with AuditServiceClient(*server.address) as client:
            assert client.shutdown() == {"stopping": True}
        server._thread and server._thread.join(timeout=10)
        # the socket must be gone
        with pytest.raises(OSError):
            socket.create_connection(server.address, timeout=0.5).close()
        server.stop()

    def test_inflight_work_finishes_before_shutdown(self):
        with ServerThread(workers=2) as server:
            results = {}

            def _slow_then_read():
                with AuditServiceClient(*server.address) as client:
                    results["slow"] = client.request(
                        "verify",
                        schema=SCHEMA,
                        secret=SECRET,
                        views=VIEWS,
                        engine="sampling",
                        options={"samples": 20000},
                    )

            worker = threading.Thread(target=_slow_then_read)
            worker.start()
            import time as _time

            _time.sleep(0.1)
            with AuditServiceClient(*server.address) as client:
                client.shutdown()
            worker.join(timeout=30)
            assert results["slow"]["ok"] is True
