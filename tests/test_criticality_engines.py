"""Tests for the pluggable criticality-engine layer.

Covers the engine registry, cross-validation of every engine against
every other (including a property-style sweep over random small
conjunctive queries and a key-constraint predicate), the serial and
process-pool execution paths of the ``pruned-parallel`` default, the
``max_valuations`` forwarding of ``common_critical_tuples``, the
uniform option validation of the sampling verification engine, and the
engine threading through sessions, free functions and the CLI.
"""

from __future__ import annotations

import json
import random
from fractions import Fraction

import pytest

from repro import (
    AnalysisSession,
    Dictionary,
    decide_security,
    q,
)
from repro.cli import main
from repro.core.critical import common_critical_tuples
from repro.core.criticality import (
    DEFAULT_CRITICALITY_ENGINE,
    CriticalityEngine,
    MinimalEngine,
    NaiveEngine,
    PrunedParallelEngine,
    WORKERS_ENV,
    available_criticality_engines,
    create_criticality_engine,
    register_criticality_engine,
)
from repro.cq.atoms import Atom, Comparison
from repro.cq.query import ConjunctiveQuery
from repro.cq.terms import Constant, Variable
from repro.exceptions import IntractableAnalysisError, SecurityAnalysisError
from repro.session import CriticalTupleCache
from repro.session.engines import SamplingVerificationEngine
from repro.relational import Domain, RelationSchema, Schema


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtin_engines_registered(self):
        names = available_criticality_engines()
        assert {"minimal", "naive", "pruned-parallel"} <= set(names)

    def test_default_is_pruned_parallel(self):
        assert DEFAULT_CRITICALITY_ENGINE == "pruned-parallel"
        assert create_criticality_engine().name == "pruned-parallel"

    def test_unknown_engine_lists_available(self):
        with pytest.raises(SecurityAnalysisError, match="minimal"):
            create_criticality_engine("no-such-engine")

    def test_instance_passes_through(self):
        engine = MinimalEngine()
        assert create_criticality_engine(engine) is engine

    def test_custom_engine_registration(self, binary_ab_schema):
        class Recording(MinimalEngine):
            name = "recording"
            calls = 0

            def critical_tuples(self, *args, **kwargs):
                Recording.calls += 1
                return super().critical_tuples(*args, **kwargs)

        register_criticality_engine("recording", Recording)
        try:
            session = AnalysisSession(
                binary_ab_schema, criticality_engine="recording"
            )
            result = session.decide("S(y) :- R(y, 'a')", "V(x) :- R(x, 'b')")
            assert result.secure
            assert Recording.calls > 0
        finally:
            from repro.core.criticality.base import _REGISTRY

            _REGISTRY.pop("recording", None)

    def test_describe(self):
        assert "pruned-parallel" in PrunedParallelEngine().describe()


# ---------------------------------------------------------------------------
# Property-style cross-validation
# ---------------------------------------------------------------------------
def _random_query(rng: random.Random, values) -> ConjunctiveQuery:
    """A random CQ with ≤2 atoms over ``R/2``, ≤3 variables, few constants."""
    variables = [Variable(name) for name in ("x", "y", "z")]

    def term():
        if rng.random() < 0.25:
            return Constant(rng.choice(values))
        return rng.choice(variables)

    atoms = [
        Atom("R", (term(), term()))
        for _ in range(rng.choice([1, 1, 2]))
    ]
    used = sorted({v for atom in atoms for v in atom.variables})
    comparisons = []
    if len(used) >= 2 and rng.random() < 0.4:
        left, right = rng.sample(used, 2)
        comparisons.append(Comparison(left, rng.choice(["!=", "=", "<"]), right))
    if rng.random() < 0.5 or not used:
        head = ()
    else:
        head = tuple(rng.sample(used, rng.randint(1, len(used))))
    return ConjunctiveQuery(head, atoms, comparisons, name="Qrand")


def _key_constraint(instance) -> bool:
    """At most one ``R`` fact per first-position value (subset-closed)."""
    seen = {}
    for fact in instance.relation("R"):
        if fact.values[0] in seen and seen[fact.values[0]] != fact:
            return False
        seen[fact.values[0]] = fact
    return True


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def engines(self):
        return (
            create_criticality_engine("minimal"),
            create_criticality_engine("naive"),
            create_criticality_engine("pruned-parallel"),
        )

    def test_random_queries_agree_across_engines(self, engines):
        values = ("a", "b", "c")
        schema = Schema([RelationSchema("R", ("u", "v"))], domain=Domain(values))
        rng = random.Random(20260727)
        minimal, naive, pruned = engines
        for index in range(25):
            query = _random_query(rng, values)
            expected = minimal.critical_tuples(query, schema)
            assert naive.critical_tuples(query, schema) == expected, (
                f"naive disagrees on #{index}: {query!r}"
            )
            assert pruned.critical_tuples(query, schema) == expected, (
                f"pruned-parallel disagrees on #{index}: {query!r}"
            )

    def test_random_queries_agree_under_key_constraint(self, engines):
        values = ("a", "b")
        schema = Schema([RelationSchema("R", ("u", "v"))], domain=Domain(values))
        rng = random.Random(42)
        minimal, naive, pruned = engines
        for index in range(12):
            query = _random_query(rng, values)
            expected = minimal.critical_tuples(
                query, schema, constraint=_key_constraint
            )
            assert (
                naive.critical_tuples(query, schema, constraint=_key_constraint)
                == expected
            ), f"naive disagrees on constrained #{index}: {query!r}"
            assert (
                pruned.critical_tuples(query, schema, constraint=_key_constraint)
                == expected
            ), f"pruned-parallel disagrees on constrained #{index}: {query!r}"

    def test_union_queries_agree(self, engines, binary_ab_schema):
        from repro import union_of

        union = union_of(q("V1() :- R('a', x)"), q("V2() :- R(x, x)"))
        minimal, naive, pruned = engines
        expected = minimal.critical_tuples(union, binary_ab_schema)
        assert naive.critical_tuples(union, binary_ab_schema) == expected
        assert pruned.critical_tuples(union, binary_ab_schema) == expected

    def test_mixed_type_analysis_domain(self, engines):
        # A numeric query constant padded with string fresh constants
        # (the Proposition 4.9 construction) yields a mixed-type domain;
        # candidate ordering must not rely on cross-type comparisons.
        from repro.core.security import decide_security
        from repro.core.criticality import critical_tuples

        schema = Schema([RelationSchema("R", ("u", "v"))], domain=Domain.of(1, "d0"))
        query = q("Q(x) :- R(x, 1)")
        minimal, _, pruned = engines
        assert pruned.critical_tuples(query, schema) == minimal.critical_tuples(
            query, schema
        )
        # End to end through the default engine and a synthesised domain;
        # the explanation must render even when the witnessing tuples mix
        # numeric and string constants.
        decision = decide_security(query, q("V(x) :- R(x, y)"), schema)
        assert decision.secure is not None
        assert decision.explain()

    def test_typed_schema_disables_symmetry_but_agrees(self, engines, emp_schema):
        # Per-attribute domains restrict the tuple space, so the orbit
        # reduction must deactivate — results still have to be identical.
        minimal, _, pruned = engines
        query = q("V(n) :- Emp(n, d, p)")
        assert pruned.critical_tuples(query, emp_schema) == minimal.critical_tuples(
            query, emp_schema
        )

    def test_typed_schema_join_checks_tuple_space(self, engines):
        # Regression: a witness grounding a *different* atom to a fact
        # outside the per-attribute tuple space must be rejected (the
        # pruned engine used to skip the membership check here).
        schema = Schema(
            [
                RelationSchema("R", ("x",)),
                RelationSchema("S", ("x",), {"x": Domain.of("a")}),
            ],
            domain=Domain.of("a", "b"),
        )
        query = q("Q() :- R(x), S(x)")
        minimal, naive, pruned = engines
        expected = minimal.critical_tuples(query, schema)
        assert naive.critical_tuples(query, schema) == expected
        assert pruned.critical_tuples(query, schema) == expected

    def test_out_of_domain_constant_checks_tuple_space(self, engines):
        # Regression: a body constant outside the analysis domain makes
        # the query unsatisfiable over tup(D); the engines must agree
        # that nothing is critical.
        schema = Schema(
            [RelationSchema("R", ("x",)), RelationSchema("S", ("x",))],
            domain=Domain.of("a", "b"),
        )
        query = q("Q() :- R(x), S('z')")
        minimal, naive, pruned = engines
        assert minimal.critical_tuples(query, schema) == frozenset()
        assert naive.critical_tuples(query, schema) == frozenset()
        assert pruned.critical_tuples(query, schema) == frozenset()


# ---------------------------------------------------------------------------
# Parallel execution paths
# ---------------------------------------------------------------------------
class TestParallelPaths:
    def test_forced_pool_matches_serial(self, monkeypatch, binary_abc_schema):
        query = q("V(x) :- R(x, y)")
        serial_engine = PrunedParallelEngine(parallel=False)
        expected = serial_engine.critical_tuples(query, binary_abc_schema)

        monkeypatch.setenv(WORKERS_ENV, "2")
        pooled = PrunedParallelEngine().critical_tuples(query, binary_abc_schema)
        assert pooled == expected

    def test_workers_zero_forces_serial(self, monkeypatch, binary_ab_schema):
        monkeypatch.setenv(WORKERS_ENV, "0")
        engine = PrunedParallelEngine()
        assert engine._resolve_workers(1000, q("V(x) :- R(x, y)"), Domain.of("a")) == 0
        assert engine.critical_tuples(q("V(x) :- R(x, y)"), binary_ab_schema)

    def test_invalid_workers_value_rejected(self, monkeypatch, binary_ab_schema):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(SecurityAnalysisError, match="many"):
            PrunedParallelEngine().critical_tuples(
                q("V(x) :- R(x, y)"), binary_ab_schema
            )

    def test_auto_mode_stays_serial_on_small_work(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        workers = PrunedParallelEngine._resolve_workers(
            4, q("V(x) :- R(x, y)"), Domain.of("a", "b")
        )
        assert workers == 0

    def test_intractable_bound_raised_in_pool(self, monkeypatch):
        # The pre-enumeration bound must survive the process-pool path.
        monkeypatch.setenv(WORKERS_ENV, "2")
        schema = Schema(
            [RelationSchema("R", ("u", "v"))], domain=Domain.of("a", "b", "c")
        )
        query = q("Q() :- R(x, y), R(y, z), R(z, w)")
        with pytest.raises(IntractableAnalysisError):
            PrunedParallelEngine().critical_tuples(
                query, schema, max_valuations=2
            )


# ---------------------------------------------------------------------------
# common_critical_tuples: max_valuations forwarding (regression)
# ---------------------------------------------------------------------------
class TestMaxValuationsForwarding:
    def test_bound_reaches_per_view_recheck(self, binary_abc_schema):
        # The secret's own search binds every variable from the seed
        # (total = 1 valuation), so only the per-view re-check can
        # exceed the bound — exactly the path that used to drop it.
        secret = q("S(x, y) :- R(x, y)")
        view = q("V() :- R(x, y), R(y, z)")
        with pytest.raises(IntractableAnalysisError):
            common_critical_tuples(
                secret, [view], binary_abc_schema, max_valuations=1
            )

    def test_bound_reaches_secret_computation(self, binary_abc_schema):
        secret = q("S() :- R(x, y), R(y, z)")
        view = q("V(x, y) :- R(x, y)")
        with pytest.raises(IntractableAnalysisError):
            common_critical_tuples(
                secret, [view], binary_abc_schema, max_valuations=1
            )

    def test_generous_bound_unchanged(self, binary_abc_schema):
        secret = q("S(x, y) :- R(x, y)")
        view = q("V() :- R(x, y), R(y, z)")
        bounded = common_critical_tuples(
            secret, [view], binary_abc_schema, max_valuations=10_000
        )
        unbounded = common_critical_tuples(secret, [view], binary_abc_schema)
        assert bounded == unbounded and bounded

    def test_engine_selection(self, binary_ab_schema):
        secret = q("S() :- R('a', x)")
        view = q("V() :- R(x, 'b')")
        default = common_critical_tuples(secret, [view], binary_ab_schema)
        for name in ("minimal", "naive", "pruned-parallel"):
            assert (
                common_critical_tuples(
                    secret, [view], binary_ab_schema, criticality_engine=name
                )
                == default
            )


# ---------------------------------------------------------------------------
# Sampling-engine option validation (regression)
# ---------------------------------------------------------------------------
class TestSamplingOptionValidation:
    @pytest.fixture
    def engine(self):
        return SamplingVerificationEngine()

    @pytest.mark.parametrize("samples", [0, -5, 2.5, "100", True])
    def test_bad_sample_counts_rejected(self, engine, samples):
        with pytest.raises(SecurityAnalysisError) as excinfo:
            engine.verify(None, [], None, samples=samples)
        assert repr(samples) in str(excinfo.value)

    @pytest.mark.parametrize(
        "tolerance", [float("nan"), float("inf"), float("-inf"), -1.0, 0, "4", True]
    )
    def test_bad_tolerances_rejected(self, engine, tolerance):
        with pytest.raises(SecurityAnalysisError) as excinfo:
            engine.verify(None, [], None, tolerance_sigmas=tolerance)
        assert repr(tolerance) in str(excinfo.value)

    def test_valid_options_still_verify(self, engine, binary_ab_schema):
        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        secret = q("S(y) :- R(y, 'a')")
        view = q("V(x) :- R(x, 'b')")
        assert engine.verify(
            secret, [view], dictionary, samples=200, tolerance_sigmas=6.0
        )


# ---------------------------------------------------------------------------
# Stack threading: sessions, free functions, cache keys, CLI
# ---------------------------------------------------------------------------
class TestStackThreading:
    def test_session_default_engine(self, emp_schema):
        session = AnalysisSession(emp_schema)
        assert session.criticality_engine_name == "pruned-parallel"
        assert isinstance(session.criticality_engine, CriticalityEngine)

    def test_session_engine_selection_changes_provider(self, emp_schema):
        minimal = AnalysisSession(emp_schema, criticality_engine="minimal")
        assert minimal.criticality_engine_name == "minimal"
        naive_engine = NaiveEngine(max_tuples=8)
        session = AnalysisSession(emp_schema, criticality_engine=naive_engine)
        assert session.criticality_engine is naive_engine

    def test_sessions_agree_across_engines(self, emp_schema):
        secret = "S(n, p) :- Emp(n, d, p)"
        views = ["V(n, d) :- Emp(n, d, p)", "W(n) :- Emp(n, 'Mgmt', p)"]
        verdicts = {}
        for name in ("minimal", "pruned-parallel"):
            session = AnalysisSession(emp_schema, criticality_engine=name)
            result = session.decide(secret, views)
            verdicts[name] = (
                result.secure,
                result.decision.common_critical,
                result.decision.secret_critical,
            )
        assert verdicts["minimal"] == verdicts["pruned-parallel"]

    def test_cache_keys_isolate_engines(self, emp_schema):
        shared = CriticalTupleCache(64)
        first = AnalysisSession(
            emp_schema, cache=shared, criticality_engine="minimal"
        )
        second = AnalysisSession(
            emp_schema, cache=shared, criticality_engine="pruned-parallel"
        )
        first.decide("S(n) :- Emp(n, 'HR', p)", "V(n) :- Emp(n, 'Mgmt', p)")
        outcome = second.decide("S(n) :- Emp(n, 'HR', p)", "V(n) :- Emp(n, 'Mgmt', p)")
        # Different engine name => different keys => no cross-engine hits.
        assert outcome.cache_used.hits == 0
        assert outcome.cache_used.misses > 0

        # The same engine on the shared cache does hit.
        third = AnalysisSession(
            emp_schema, cache=shared, criticality_engine="pruned-parallel"
        )
        warm = third.decide("S(n) :- Emp(n, 'HR', p)", "V(n) :- Emp(n, 'Mgmt', p)")
        assert warm.cache_used.misses == 0

    def test_free_functions_accept_engine(self, emp_schema):
        secret = q("S(n) :- Emp(n, 'HR', p)")
        view = q("V(n) :- Emp(n, 'Mgmt', p)")
        default = decide_security(secret, view, emp_schema)
        for name in ("minimal", "pruned-parallel"):
            decision = decide_security(
                secret, view, emp_schema, criticality_engine=name
            )
            assert decision.secure == default.secure
            assert decision.common_critical == default.common_critical

    def test_collusion_and_knowledge_accept_engine(self, emp_schema):
        from repro import analyse_collusion, decide_with_knowledge
        from repro.core.prior import CardinalityConstraintKnowledge

        secret = q("S(n, p) :- Emp(n, d, p)")
        views = [q("V(n, d) :- Emp(n, d, p)"), q("W(n) :- Emp(n, 'Mgmt', p)")]
        baseline = analyse_collusion(secret, views, emp_schema)
        report = analyse_collusion(
            secret, views, emp_schema, criticality_engine="minimal"
        )
        assert [d.secure for d in report.per_view] == [
            d.secure for d in baseline.per_view
        ]

        knowledge = CardinalityConstraintKnowledge("exactly", 2)
        decision = decide_with_knowledge(
            secret, views, knowledge, emp_schema, criticality_engine="minimal"
        )
        assert decision.secure == decide_with_knowledge(
            secret, views, knowledge, emp_schema
        ).secure

    def test_session_engine_used_for_common_critical_rechecks(self, binary_ab_schema):
        # Regression: the per-view is_critical re-checks inside
        # common_critical_tuples must run on the session's engine, not
        # silently fall back to the package default.
        from repro.core.prior import TupleStatusKnowledge

        class Recording(MinimalEngine):
            name = "recording-rechecks"
            is_critical_calls = 0

            def is_critical(self, *args, **kwargs):
                Recording.is_critical_calls += 1
                return super().is_critical(*args, **kwargs)

        session = AnalysisSession(binary_ab_schema, criticality_engine=Recording())
        outcome = session.with_knowledge(
            "S(x, y) :- R(x, y)", "V(x) :- R(x, y)", TupleStatusKnowledge()
        )
        assert outcome.decision.secure is None  # insecure pair, nothing disclosed
        assert Recording.is_critical_calls > 0

    def test_positive_leakage_accepts_engine(self, binary_ab_schema):
        from repro import positive_leakage

        dictionary = Dictionary.uniform(binary_ab_schema, Fraction(1, 2))
        secret = q("S() :- R('a', 'a')")
        view = q("V() :- R('a', x)")
        baseline = positive_leakage(secret, view, dictionary)
        result = positive_leakage(
            secret, view, dictionary, criticality_engine="minimal"
        )
        assert result.leakage == baseline.leakage

    def test_unknown_engine_raises_everywhere(self, emp_schema):
        with pytest.raises(SecurityAnalysisError, match="pruned-parallel"):
            AnalysisSession(emp_schema, criticality_engine="bogus")
        with pytest.raises(SecurityAnalysisError, match="pruned-parallel"):
            decide_security(
                q("S(n) :- Emp(n, 'HR', p)"),
                q("V(n) :- Emp(n, 'Mgmt', p)"),
                emp_schema,
                criticality_engine="bogus",
            )


class TestCLIFlag:
    @pytest.fixture
    def schema_file(self, tmp_path):
        document = {
            "relations": [
                {
                    "name": "Emp",
                    "attributes": ["name", "department", "phone"],
                    "attribute_domains": {
                        "name": ["n0", "n1"],
                        "department": ["d0", "d1"],
                        "phone": ["p0", "p1"],
                    },
                }
            ]
        }
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(document))
        return str(path)

    @pytest.mark.parametrize("engine", ["minimal", "pruned-parallel"])
    def test_decide_with_engine_flag(self, schema_file, capsys, engine):
        exit_code = main(
            [
                "decide",
                "--schema", schema_file,
                "--secret", "S(n) :- Emp(n, HR, p)",
                "--view", "V(n) :- Emp(n, Mgmt, p)",
                "--criticality-engine", engine,
            ]
        )
        assert exit_code == 0
        assert "secure" in capsys.readouterr().out

    def test_decide_with_naive_engine_on_tiny_schema(self, tmp_path, capsys):
        # The naive ablation engine enumerates 2^|tup(D)| instances, so it
        # only fits the smallest schemas; over R(X,Y) with two variables the
        # analysis tuple space is 4 and the CLI path works end to end.
        document = {"relations": [{"name": "R", "attributes": ["X", "Y"]}],
                    "domain": ["a", "b"]}
        path = tmp_path / "binary.json"
        path.write_text(json.dumps(document))
        exit_code = main(
            [
                "decide",
                "--schema", str(path),
                "--secret", "S(y) :- R(y, 'a')",
                "--view", "V(x) :- R(x, 'b')",
                "--criticality-engine", "naive",
            ]
        )
        assert exit_code == 0
        assert "secure" in capsys.readouterr().out

    def test_unknown_engine_exits_two(self, schema_file, capsys):
        exit_code = main(
            [
                "decide",
                "--schema", schema_file,
                "--secret", "S(n) :- Emp(n, HR, p)",
                "--view", "V(n) :- Emp(n, Mgmt, p)",
                "--criticality-engine", "bogus",
            ]
        )
        assert exit_code == 2
        assert "bogus" in capsys.readouterr().err

    def test_plan_with_engine_flag(self, tmp_path, capsys):
        document = {
            "relations": [
                {
                    "name": "Emp",
                    "attributes": ["name", "department", "phone"],
                    "attribute_domains": {
                        "name": ["n0", "n1"],
                        "department": ["d0", "d1"],
                        "phone": ["p0", "p1"],
                    },
                }
            ],
            "secrets": {"hr_names": "S(n) :- Emp(n, HR, p)"},
            "views": {"bob": "V(n) :- Emp(n, Mgmt, p)"},
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        exit_code = main(
            ["plan", "--plan", str(path), "--criticality-engine", "minimal"]
        )
        assert exit_code == 0
        assert "hr_names" in capsys.readouterr().out
