"""Tests for the live-session protocol operations of the audit service.

These boot a real single-process daemon (:class:`ServerThread`) and
exercise ``live-create`` / ``apply-delta`` / ``live-audit`` /
``subscribe`` over real sockets: session lifecycle, per-delta
notification fan-out, result-cache invalidation the moment a delta
lands, and the error contract for unknown or duplicate sessions.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench import employee_schema
from repro.io import schema_to_dict
from repro.service import (
    AuditServiceClient,
    ProtocolError,
    ServerThread,
    ServiceError,
    parse_request,
)
from repro.service.protocol import ERROR_ANALYSIS, ERROR_INVALID_REQUEST


def _schema_doc(**sizes) -> dict:
    document = schema_to_dict(employee_schema(**sizes))
    document["tuple_probability"] = "1/4"
    return document


SCHEMA = _schema_doc()
SECRET = "S(n, p) :- Emp(n, d, p)"
VIEWS = {"bob": "V(n, d) :- Emp(n, d, p)"}
SECURE_SECRET = "S4(n) :- Emp(n, 'd0', p)"
SECURE_VIEWS = {"bob": "V4(n) :- Emp(n, 'd1', p)"}
FACT = ["Emp", ["n0", "d0", "p0"]]
OTHER_FACT = ["Emp", ["n1", "d1", "p1"]]


@pytest.fixture(scope="module")
def server():
    with ServerThread(workers=2) as running:
        yield running


@pytest.fixture()
def client(server):
    with AuditServiceClient(*server.address) as connected:
        yield connected


_counter = iter(range(10_000))


def _create(client, name=None, **overrides) -> str:
    """Create a fresh live session with a unique name; return the name."""
    name = name or f"live-{next(_counter)}"
    fields = {
        "live": name,
        "schema": SCHEMA,
        "secrets": {"s": SECRET},
        "views": VIEWS,
        "facts": [FACT],
    }
    fields.update(overrides)
    result = client.call("live-create", **fields)
    assert result["created"] is True
    return name


# ---------------------------------------------------------------------------
# Protocol validation of the live envelopes
# ---------------------------------------------------------------------------
class TestLiveProtocol:
    def test_live_name_required(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "apply-delta", "add": [FACT]})
        assert excinfo.value.code == ERROR_INVALID_REQUEST

    def test_empty_delta_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "apply-delta", "live": "x"})
        assert "at least one" in str(excinfo.value)

    def test_publish_must_map_names_to_queries(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "apply-delta", "live": "x", "publish": ["V(n) :- Emp(n, d, p)"]})

    def test_retract_must_be_name_list(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "apply-delta", "live": "x", "retract": "bob"})

    def test_live_create_requires_secrets(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request({"op": "live-create", "live": "x", "schema": SCHEMA})
        assert "secrets" in str(excinfo.value)

    def test_live_ops_are_flagged(self):
        request = parse_request(
            {"op": "apply-delta", "live": "x", "add": [FACT]}
        )
        assert request.is_live and request.is_live_mutation
        audit = parse_request({"op": "live-audit", "live": "x"})
        assert audit.is_live and not audit.is_live_mutation


# ---------------------------------------------------------------------------
# Session lifecycle over the wire
# ---------------------------------------------------------------------------
class TestLiveLifecycle:
    def test_create_then_audit(self, client):
        name = _create(client)
        snapshot = client.call("live-audit", live=name)
        assert snapshot["revision"] == 0
        assert snapshot["fact_count"] == 1
        assert snapshot["secrets"]["s"]["secure"] is False
        assert snapshot["secrets"]["s"]["exposed"] is True
        assert snapshot["view_names"] == ["bob"]

    def test_duplicate_create_is_an_analysis_error(self, client):
        name = _create(client)
        with pytest.raises(ServiceError) as excinfo:
            _create(client, name=name)
        assert excinfo.value.code == ERROR_ANALYSIS
        assert "already exists" in str(excinfo.value)

    def test_unknown_session_is_an_analysis_error(self, client):
        for op in ("live-audit", "apply-delta"):
            with pytest.raises(ServiceError) as excinfo:
                client.call(op, live="never-created", add=[FACT])
            assert excinfo.value.code == ERROR_ANALYSIS

    def test_store_backed_session(self, client):
        name = _create(client, options={"store": True})
        snapshot = client.call("live-audit", live=name)
        assert snapshot["store_backed"] is True
        result = client.call("apply-delta", live=name, add=[OTHER_FACT])
        assert result["fact_count"] == 2

    def test_sql_engine_session_matches_default(self, client):
        default_name = _create(client)
        sql_name = _create(client, eval_engine="sql")
        default = client.call("live-audit", live=default_name)
        via_sql = client.call("live-audit", live=sql_name)
        assert via_sql["secrets"] == default["secrets"]
        assert via_sql["fact_count"] == default["fact_count"]


class TestApplyDelta:
    def test_delta_advances_revision_and_counts_events(self, client):
        name = _create(client)
        result = client.call("apply-delta", live=name, add=[OTHER_FACT])
        assert result["event"] == "apply-delta"
        assert result["revision"] == 1
        assert result["fact_count"] == 2
        assert result["events"] == 1
        result = client.call(
            "apply-delta", live=name, remove=[FACT, OTHER_FACT]
        )
        assert result["revision"] == 2
        assert result["fact_count"] == 0
        # The answer emptied out, so the insecure secret is no longer exposed.
        assert result["secrets"]["s"]["exposed"] is False

    def test_delta_invalidates_cached_audits(self, client):
        name = _create(client)
        first = client.request("live-audit", live=name)
        second = client.request("live-audit", live=name)
        assert first["server"]["cached"] is False
        assert second["server"]["cached"] is True
        client.call("apply-delta", live=name, add=[OTHER_FACT])
        third = client.request("live-audit", live=name)
        assert third["server"]["cached"] is False
        assert third["result"]["fact_count"] == 2

    def test_publish_and_retract_in_one_request(self, client):
        name = _create(
            client, secrets={"s": SECURE_SECRET}, views=SECURE_VIEWS
        )
        assert client.call("live-audit", live=name)["secrets"]["s"]["secure"] is True
        result = client.call(
            "apply-delta",
            live=name,
            publish={"leak": "V5(n, p) :- Emp(n, d, p)"},
            add=[OTHER_FACT],
        )
        assert result["events"] == 2  # one publish + one fact delta
        assert result["secrets"]["s"]["secure"] is False
        result = client.call("apply-delta", live=name, retract=["leak"])
        assert result["events"] == 1
        assert result["secrets"]["s"]["secure"] is True

    def test_retract_unknown_view_is_an_analysis_error(self, client):
        name = _create(client)
        with pytest.raises(ServiceError) as excinfo:
            client.call("apply-delta", live=name, retract=["nope"])
        assert excinfo.value.code == ERROR_ANALYSIS

    def test_stats_reports_live_sessions(self, client):
        name = _create(client)
        client.call("apply-delta", live=name, add=[OTHER_FACT])
        stats = client.stats()
        assert name in stats["live"]
        entry = stats["live"][name]
        assert entry["revision"] == 1
        assert entry["facts"] == 2
        assert entry["stats"]["deltas"] == 1


# ---------------------------------------------------------------------------
# Subscribe streaming
# ---------------------------------------------------------------------------
class TestSubscribe:
    def test_subscribe_unknown_session_fails_eagerly(self, server):
        with AuditServiceClient(*server.address) as subscriber:
            with pytest.raises(ServiceError) as excinfo:
                subscriber.subscribe("never-created")
            assert excinfo.value.code == ERROR_ANALYSIS

    def test_notifications_stream_per_event(self, server, client):
        name = _create(client)
        subscriber = AuditServiceClient(*server.address)
        stream = subscriber.subscribe(name)
        received = []
        done = threading.Event()

        def _pump():
            for notification in stream:
                received.append(notification)
                if len(received) >= 3:
                    done.set()
                    return

        thread = threading.Thread(target=_pump, daemon=True)
        thread.start()
        try:
            client.call("apply-delta", live=name, add=[OTHER_FACT])
            client.call(
                "apply-delta",
                live=name,
                publish={"extra": "V6(n) :- Emp(n, d, p)"},
                remove=[FACT],
            )
            assert done.wait(10.0), f"got {len(received)} notifications"
        finally:
            subscriber.interrupt()
            thread.join(5.0)
            subscriber.close()
        events = [note["event"] for note in received]
        assert events == ["apply-delta", "publish", "apply-delta"]
        revisions = [note["revision"] for note in received]
        assert revisions == sorted(revisions)
        assert all(note["live"] for note in received)
        # The last notification reflects the final state: one fact net.
        assert received[-1]["fact_count"] == 1

    def test_stream_matches_final_audit(self, server, client):
        name = _create(client)
        subscriber = AuditServiceClient(*server.address)
        stream = subscriber.subscribe(name)
        received = []
        done = threading.Event()

        def _pump():
            for notification in stream:
                received.append(notification)
                if len(received) >= 2:
                    done.set()
                    return

        thread = threading.Thread(target=_pump, daemon=True)
        thread.start()
        try:
            client.call("apply-delta", live=name, add=[OTHER_FACT])
            client.call("apply-delta", live=name, remove=[FACT])
            assert done.wait(10.0)
        finally:
            subscriber.interrupt()
            thread.join(5.0)
            subscriber.close()
        final = client.call("live-audit", live=name)
        last = received[-1]
        assert last["revision"] == final["revision"]
        assert last["fact_count"] == final["fact_count"]
        # The verdicts agree; only the per-event ``changed`` flag is
        # delta-relative (a snapshot never reports changes).
        def _verdict(doc):
            return {
                name: {k: v for k, v in entry.items() if k != "changed"}
                for name, entry in doc["secrets"].items()
            }

        assert _verdict(last) == _verdict(final)
