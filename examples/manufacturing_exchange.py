#!/usr/bin/env python
"""The manufacturing-company data exchange of the paper's introduction.

A manufacturer exchanges XML-style messages (views) with three partners:

* ``V1`` — part details, sent to suppliers,
* ``V2`` — product features and selling prices, sent to retailers,
* ``V3`` — labour costs, sent to a tax consultancy.

The internal *manufacturing cost* per product must stay secret.  The
example audits each message, analyses what happens when partners collude
(e.g. the consultancy merges with a retailer), shows a leaky view being
caught before publication, and proposes a safe publishing plan.

Run with::

    python examples/manufacturing_exchange.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import Dictionary, SecurityAuditor, q
from repro.bench import manufacturing_schema
from repro.core import analyse_collusion


def main() -> None:
    schema = manufacturing_schema()
    dictionary = Dictionary.uniform(schema, Fraction(1, 4))
    auditor = SecurityAuditor(schema, dictionary=dictionary)

    secret = q("Secret(prod, cost) :- Cost(prod, cost)")
    views = {
        "supplier": q("V1(prod, part, price) :- Part(prod, part, price)"),
        "retailer": q("V2(prod, feature, selling) :- Product(prod, feature, selling)"),
        "tax_consultant": q("V3(prod, labor) :- Labor(prod, labor)"),
    }

    print("== Audit of the three partner messages ==")
    report = auditor.audit(secret, views)
    print(report.render())

    print("\n== Collusion analysis ==")
    collusion = analyse_collusion(secret, views, schema)
    print(collusion.summary())
    print(
        "  tax consultancy + retailer collude:",
        "secure" if collusion.coalition_is_secure(["tax_consultant", "retailer"]) else "NOT secure",
    )

    print("\n== A proposed fourth message that would leak ==")
    # Someone proposes publishing the full cost breakdown "to help suppliers
    # quote better" — the auditor rejects it before it ships.
    leaky = q("V4(prod, cost) :- Cost(prod, cost), Part(prod, part, price)")
    decision = auditor.decide(secret, leaky)
    print(" ", decision.explain())
    quick = auditor.quick_check(secret, leaky)
    print("  practical algorithm:", quick.explain())

    print("\n== Safe publishing plan ==")
    candidates = list(views.values()) + [leaky]
    safe = auditor.safe_publishing_plan(secret, candidates)
    print("  publishable without any disclosure about the secret:",
          ", ".join(v.name for v in safe))


if __name__ == "__main__":
    main()
