#!/usr/bin/env python
"""Quickstart: session-based auditing of the query-view pairs of Table 1.

The data owner stores a single relation ``Emp(name, department, phone)``
and wants to understand what different published views disclose about
different secrets.  The walkthrough opens one
:class:`~repro.AnalysisSession` over the schema — the compile-once /
analyse-many front door — reproduces the Table 1 spectrum (total,
partial, minute and no disclosure), then audits a whole publishing plan
in one batch while the session's critical-tuple cache shares every
``crit_D(Q)`` across the analyses.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import AnalysisSession, Dictionary, PublishingPlan, SecurityAuditor, q
from repro.audit import render_table
from repro.bench import employee_schema, table1_pairs


def main() -> None:
    schema = employee_schema(names=2, departments=2, phones=2)
    dictionary = Dictionary.uniform(schema, Fraction(1, 4))

    # One session per schema: queries compile to cached critical-tuple
    # sets, every analysis after the first reuses them.
    session = AnalysisSession(schema, dictionary=dictionary, engine="exact")
    auditor = SecurityAuditor(schema, dictionary=dictionary, session=session)

    print("Schema:", schema)
    print("Dictionary: uniform tuple probability 1/4 "
          f"(expected size {float(dictionary.expected_instance_size()):.1f} tuples)\n")

    rows = []
    for row in table1_pairs():
        assessment = auditor.classify(row.secret, list(row.views))
        quick = session.quick_check(row.secret, list(row.views))
        leak = assessment.leakage
        rows.append(
            (
                f"({row.row})",
                ", ".join(v.name for v in row.views),
                row.secret.name,
                assessment.level.value,
                "yes" if assessment.secure else "no",
                "secure" if quick.check.certainly_secure else "flagged",
                "-" if leak is None else f"{float(leak.leakage):.3f}",
            )
        )

    print(
        render_table(
            ("row", "view(s)", "query", "disclosure", "secure", "quick check", "leak"),
            rows,
        )
    )

    print("\nDetails for row (4) — the secure pair, via a compiled query:")
    secret4 = session.compile("S4(n) :- Emp(n, HR, p)")
    outcome = session.decide(secret4, "V4(n) :- Emp(n, Mgmt, p)")
    print(f"  [{secret4.fingerprint}] {outcome.explain()}")
    print(f"  analysed in {outcome.elapsed_seconds * 1000:.1f} ms, "
          f"cache: {outcome.cache_used.hits} hit(s), {outcome.cache_used.misses} miss(es)")

    print("\nDetails for row (2) — the collusion scenario:")
    report = auditor.audit(
        "S2(n, p) :- Emp(n, d, p)",
        {"Bob": "V2(n, d) :- Emp(n, d, p)", "Carol": "V2p(d, p) :- Emp(n, d, p)"},
    )
    print(report.render())

    # Batch mode: a multi-secret, multi-recipient publishing plan audited
    # in one call.  Every critical-tuple set is computed once and every
    # coalition verdict follows from the cached singletons (Theorem 4.5).
    print("\nBatch audit of the full publishing plan:")
    plan = PublishingPlan(
        secrets={
            "department_list": "S1(d) :- Emp(n, d, p)",
            "hr_phones": "S(n, p) :- Emp(n, HR, p)",
        },
        views={
            "Bob": "V2(n, d) :- Emp(n, d, p)",
            "Carol": "V2p(d, p) :- Emp(n, d, p)",
            "Dana": "V4(n) :- Emp(n, Mgmt, p)",
        },
    )
    audit = session.audit_plan(plan)
    print(audit.render())
    print(f"  session cache so far: {session.cache_stats!r}")

    # The introduction's concrete attack: once Bob and Carol collude, how well
    # can they guess a specific person's phone number?  With k people sharing
    # the department the success probability is ≈ 1/k (the paper's "25%" for
    # k = 4); we run k = 3 here to keep the exact computation instant.
    from repro.core import guessing_report
    from repro.relational import Domain, RelationSchema, Schema

    print("\nThe introduction's guessing attack (three people share the department):")
    people = ("alice", "bob", "carol")
    phones = ("x1", "x2", "x3")
    wide_schema = Schema(
        [
            RelationSchema(
                "Emp",
                ("name", "department", "phone"),
                {
                    "name": Domain.of(*people),
                    "department": Domain.of("hr"),
                    "phone": Domain.of(*phones),
                },
            )
        ]
    )
    wide_dictionary = Dictionary.uniform(wide_schema, Fraction(1, 9))
    attack = guessing_report(
        q("S(n, p) :- Emp(n, d, p)"),
        [q("Vnd(n, d) :- Emp(n, d, p)"), q("Vdp(d, p) :- Emp(n, d, p)")],
        [
            [(name, "hr") for name in people],
            [("hr", phone) for phone in phones],
        ],
        wide_dictionary,
        restrict_to_rows=[("alice", phone) for phone in phones],
    )
    print(f"  {attack.summary()}")
    print(
        f"  With {len(people)} people sharing the department the adversary guesses "
        f"alice's number with probability {float(attack.posterior):.2f} "
        f"(prior was {float(attack.prior):.2f}); the success rate falls towards 1/k as "
        "k people share the department — the paper's '25% chance' for k = 4."
    )


if __name__ == "__main__":
    main()
