#!/usr/bin/env python
"""Practical (asymptotic) security — Section 6.2.

Perfect secrecy is very strict: a view that mentions *any* tuple the
secret also depends on is insecure, however unlikely the coincidence.
The practical-security model keeps the expected database size fixed
while the domain grows, and asks whether the conditional probability
``μ_n[S | V]`` vanishes.

The example classifies three (secret, view) pairs over a social-graph
relation ``Follows(follower, followee)`` and validates the analytic
exponents with Monte-Carlo simulation.

Run with::

    python examples/practical_security.py
"""

from __future__ import annotations

from repro import q
from repro.core import asymptotic_order, classify_practical_security, empirical_mu
from repro.relational import Domain, RelationSchema, Schema


def main() -> None:
    schema = Schema(
        [RelationSchema("Follows", ("follower", "followee"))],
        domain=Domain.of("alice", "bob"),
    )
    expected_edges = 3.0

    pairs = [
        (
            "disjoint constants (perfect security)",
            q("S() :- Follows('alice', 'alice')"),
            q("V() :- Follows('bob', 'bob')"),
        ),
        (
            "specific edge vs out-neighbourhood (practical security)",
            q("S() :- Follows('alice', 'bob')"),
            q("V() :- Follows('alice', x)"),
        ),
        (
            "specific edge vs triangle through it (practical disclosure)",
            q("S() :- Follows('alice', 'bob')"),
            q("V() :- Follows('alice', 'bob'), Follows('bob', x)"),
        ),
    ]

    print("== Classification ==")
    for label, secret, view in pairs:
        report = classify_practical_security(secret, view, schema, expected_sizes=expected_edges)
        print(f"\n  {label}")
        print(f"    secret: {secret}")
        print(f"    view:   {view}")
        print(f"    level:  {report.level.value}")
        if report.view_order is not None:
            print(
                f"    μ_n[V]  ~ {report.view_order.coefficient:.2f}·n^-{report.view_order.exponent},  "
                f"μ_n[SV] ~ {report.joint_order.coefficient:.2f}·n^-{report.joint_order.exponent},  "
                f"limit μ_n[S|V] ≈ {report.limit:.3f}"
            )
        print(f"    {report.explanation}")

    print("\n== Monte-Carlo validation of the analytic orders ==")
    view = q("V() :- Follows('alice', x)")
    order = asymptotic_order(view, expected_sizes=expected_edges)
    for n in (20, 40, 80):
        simulated = empirical_mu(view, domain_size=n, expected_sizes=expected_edges,
                                 samples=4000, seed=1)
        predicted = order.estimate(n)
        print(f"  n = {n:3d}:  simulated μ_n[V] = {simulated:.4f},  predicted ≈ {predicted:.4f}")


if __name__ == "__main__":
    main()
