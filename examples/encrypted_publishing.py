#!/usr/bin/env python
"""Publishing an encrypted copy of the database (Section 5.4).

A company outsources its ``Accounts(customer, branch)`` table to an
untrusted service provider, encrypting every attribute value with a
perfect one-way function.  What does the provider learn?

* structure-only queries (joins, inequalities, cardinalities) are fully
  answerable from the encrypted copy,
* constant-specific queries are not answerable, but the copy is still
  *not* perfectly secure for them (it reveals the table's cardinality),
* the leakage measure grades how serious that residual disclosure is.

Run with::

    python examples/encrypted_publishing.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import Dictionary, Fact, Instance, q
from repro.core import (
    EncryptedView,
    EncryptedViewAnswerIs,
    answerable_from_encrypted_view,
    encrypted_view_security,
)
from repro.probability import ExactEngine, QueryTrue
from repro.relational import Domain, RelationSchema, Schema


def main() -> None:
    schema = Schema(
        [RelationSchema("Accounts", ("customer", "branch"))],
        domain=Domain.of("ann", "bob", "main_st"),
    )
    dictionary = Dictionary.uniform(schema, Fraction(1, 3))
    view = EncryptedView("Accounts")

    print("== What the provider actually receives ==")
    instance = Instance.of(
        Fact("Accounts", ("ann", "main_st")),
        Fact("Accounts", ("bob", "main_st")),
    )
    for row in sorted(view.ciphertext(instance)):
        print("  ", row)
    print("  (canonical structure:", sorted(view.answer(instance)), ")")

    print("\n== Answerability from the encrypted copy ==")
    same_branch = q("SameBranch() :- Accounts(x, b), Accounts(y, b), x != y")
    ann_accounts = q("AnnAccounts() :- Accounts('ann', b)")
    print("  'two customers share a branch' answerable?",
          answerable_from_encrypted_view(same_branch, view, dictionary))
    print("  'ann has an account' answerable?",
          answerable_from_encrypted_view(ann_accounts, view, dictionary))

    print("\n== Perfect security verdicts ==")
    for secret in (ann_accounts, same_branch):
        report = encrypted_view_security(secret, view, schema)
        print(f"  {secret.name}: {'secure' if report.secure else 'NOT secure'} — {report.reason}")

    print("\n== Grading the residual disclosure ==")
    engine = ExactEngine(dictionary)
    secret_event = QueryTrue(ann_accounts)
    prior = engine.probability(secret_event)
    answer_event = EncryptedViewAnswerIs(view, view.answer(instance))
    posterior = engine.conditional_probability(secret_event, answer_event)
    print(f"  P[ann has an account]                        = {float(prior):.4f}")
    print(f"  P[ann has an account | encrypted view above] = {float(posterior):.4f}")
    print("  The encrypted view shifts the belief (it reveals the cardinality),")
    print("  but cannot single out 'ann' among the customers.")


if __name__ == "__main__":
    main()
