#!/usr/bin/env python
"""Prior knowledge changes what a view discloses (Section 5 of the paper).

Four small vignettes over a relation ``R(owner, asset)``:

1. **Key constraints** (Corollary 5.3): a view that is harmless on its
   own becomes a total give-away once the adversary knows the first
   attribute is a key.
2. **Cardinality knowledge** (Application 3): knowing even the size of
   the database destroys perfect secrecy for every non-trivial query.
3. **Protecting secrets with knowledge** (Corollary 5.4): announcing the
   status of the common critical tuples restores security.
4. **Prior views / relative security** (Corollary 5.5): a new view may
   add nothing beyond what an already-published view disclosed.

Run with::

    python examples/prior_knowledge.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import Dictionary, Fact, q
from repro.core import (
    CardinalityConstraintKnowledge,
    KeyConstraintKnowledge,
    TupleStatusKnowledge,
    decide_security,
    decide_with_cardinality_constraint,
    decide_with_key_constraints,
    decide_with_prior_view,
    decide_with_tuple_status,
    verify_with_knowledge,
)
from repro.relational import Domain, RelationSchema, Schema


def banner(title: str) -> None:
    print(f"\n== {title} ==")


def main() -> None:
    schema = Schema([RelationSchema("R", ("owner", "asset"))], domain=Domain.of("a", "b", "c"))
    dictionary = Dictionary.uniform(schema, Fraction(1, 3))

    banner("1. Keys turn a harmless view into a disclosure (Corollary 5.3)")
    secret = q("S() :- R('alice', 'bond')")
    view = q("V() :- R('alice', 'cash')")
    print("  secret:", secret)
    print("  view:  ", view)
    print("  without keys:", "secure" if decide_security(secret, view, schema).secure else "NOT secure")
    keys = KeyConstraintKnowledge({"R": (0,)})
    with_keys = decide_with_key_constraints(secret, view, keys, schema)
    print("  with 'owner is a key':", "secure" if with_keys.secure else "NOT secure")
    print("   ", with_keys.explanation)

    banner("2. Cardinality knowledge destroys perfect secrecy (Application 3)")
    secret = q("S() :- R('alice', 'bond')")
    view = q("V() :- R('bob', 'cash')")
    cardinality = CardinalityConstraintKnowledge("exactly", 1)
    decision = decide_with_cardinality_constraint(secret, view, cardinality, schema)
    print("  secret and view touch different tuples, yet with |I| = 1 known:",
          "secure" if decision.secure else "NOT secure")
    print("   ", decision.explanation)

    banner("3. Disclosing the common critical tuple protects the rest (Corollary 5.4)")
    secret = q("S() :- R('alice', -)")
    view = q("V() :- R(-, 'bond')")
    print("  without knowledge:",
          "secure" if decide_security(secret, view, schema).secure else "NOT secure")
    status = TupleStatusKnowledge(absent=[Fact("R", ("alice", "bond"))])
    decision = decide_with_tuple_status(secret, view, status, schema)
    print("  after announcing R('alice','bond') is not in the database:",
          "secure" if decision.secure else "NOT secure")
    print("  numeric confirmation (Definition 5.1):",
          verify_with_knowledge(secret, view, status, dictionary))

    banner("4. Relative security: a new view may add nothing (Corollary 5.5)")
    two_relations = Schema(
        [RelationSchema("R1", ("x", "y", "z")), RelationSchema("R2", ("x", "y", "z"))],
        domain=Domain.of("a", "b", "c", "d", "e", "f"),
    )
    prior = q("U() :- R1('a', 'b', -), R2('d', 'e', -)")
    secret = q("S() :- R1('a', -, -), R2('d', 'e', 'f')")
    view = q("V() :- R1('a', 'b', 'c'), R2('d', -, -)")
    print("  secret vs prior view alone:  ",
          "secure" if decide_security(secret, prior, two_relations).secure else "NOT secure")
    print("  secret vs new view alone:    ",
          "secure" if decide_security(secret, view, two_relations).secure else "NOT secure")
    relative = decide_with_prior_view(secret, view, prior, two_relations)
    print("  new view given the prior one:",
          "no additional disclosure" if relative.secure else "additional disclosure")
    print("   ", relative.explanation)


if __name__ == "__main__":
    main()
