#!/usr/bin/env python
"""Demo: the disclosure-audit service end to end, in one process.

A hospital-style data owner runs the audit daemon once and lets many
clients ask disclosure questions over the wire.  The walkthrough

1. boots the daemon on an ephemeral port (in a background thread — in
   production you would run ``repro-audit serve --port 8765``),
2. sends every kind of analysis request through the blocking client,
3. fires a burst of identical requests from concurrent connections to
   show request coalescing (the burst costs *one* computation),
4. generates a seeded, replayable workload file and load-tests the
   daemon with it,
5. reads back the server's metrics: per-operation latencies, coalescing
   hit rate, per-session cache and probability-kernel counters.

Run with::

    python examples/service_demo.py
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

from repro.bench import employee_schema
from repro.io import schema_to_dict
from repro.service import AsyncAuditServiceClient, AuditServiceClient, ServerThread
from repro.workload import WorkloadSpec, generate_workload, load_workload, replay_workload, save_workload


def schema_document() -> dict:
    """The 3-variable ``Emp(name, department, phone)`` schema as JSON."""
    document = schema_to_dict(employee_schema())
    document["tuple_probability"] = "1/4"
    return document


def single_requests(address, schema: dict) -> None:
    print("== one client, every operation " + "=" * 30)
    with AuditServiceClient(*address) as client:
        decide = client.call(
            "decide",
            schema=schema,
            secret="S(n, p) :- Emp(n, d, p)",
            views={"bob": "V(n, d) :- Emp(n, d, p)"},
        )
        print(f"decide:   verdict={decide['verdict']}  ({decide['explanation'][:60]}...)")

        leakage = client.call(
            "leakage",
            schema=schema,
            secret="S(n, p) :- Emp(n, d, p)",
            views=["V(n, d) :- Emp(n, d, p)"],
        )
        print(f"leakage:  leak(S, V̄) = {leakage['leakage']['exact']}")

        knowledge = client.call(
            "with_knowledge",
            schema=schema,
            secret="S(n, p) :- Emp(n, d, p)",
            views=["V(n, d) :- Emp(n, d, p)"],
            knowledge={"kind": "keys", "keys": {"Emp": [0]}},
        )
        print(f"w/ keys:  verdict={knowledge['verdict']}")

        plan = client.call(
            "plan",
            schema=schema,
            secrets={"hr": "S(n) :- Emp(n, HR, p)", "pairs": "S(n, p) :- Emp(n, d, p)"},
            views={"bob": "V(n) :- Emp(n, Mgmt, p)", "carol": "W(n, d) :- Emp(n, d, p)"},
        )
        print(
            f"plan:     verdict={plan['verdict']}  "
            f"violations={[(v['secret'], v['recipient']) for v in plan['violations']]}"
        )

        audit = client.call(
            "audit",
            schema=schema,
            secret="S(n, p) :- Emp(n, d, p)",
            views={"bob": "V(n, d) :- Emp(n, d, p)"},
        )
        cache = audit["observability"]["critical_tuple_cache"]
        print(
            f"audit:    all_secure={audit['all_secure']}  "
            f"cache hits/misses={cache['hits']}/{cache['misses']}"
        )


def coalescing_burst(address, schema: dict, count: int = 16) -> None:
    print(f"\n== {count} identical requests, concurrently " + "=" * 20)
    document = dict(
        op="collusion",
        schema=schema,
        secret="S(n, p) :- Emp(n, d, p)",
        views={"bob": "V(n, d) :- Emp(n, d, p)", "carol": "W(d, p) :- Emp(n, d, p)"},
    )

    async def _burst():
        clients = [AsyncAuditServiceClient(*address) for _ in range(count)]
        try:
            return await asyncio.gather(*(c.request(**document) for c in clients))
        finally:
            for c in clients:
                await c.close()

    responses = asyncio.run(_burst())
    computed = sum(
        1
        for r in responses
        if not (r["server"]["coalesced"] or r["server"]["cached"])
    )
    coalesced = sum(1 for r in responses if r["server"]["coalesced"])
    cached = sum(1 for r in responses if r["server"]["cached"])
    print(f"computed={computed}  coalesced={coalesced}  result-cache hits={cached}")
    print("every response identical:",
          len({json.dumps(r["result"], sort_keys=True) for r in responses}) == 1)


def workload_replay(address) -> None:
    print("\n== seeded workload file, replayed over 8 connections " + "=" * 7)
    requests = generate_workload(WorkloadSpec(seed=7, requests=150, duplicate_fraction=0.4))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.json"
        save_workload(requests, path)
        replayed = load_workload(path)  # files round-trip and re-validate
    summary = replay_workload(replayed, *address, concurrency=8)
    print(
        f"{summary['requests']} requests in {summary['seconds']}s  "
        f"-> {summary['requests_per_second']} req/s, "
        f"p50={summary['latency_ms']['p50']}ms p95={summary['latency_ms']['p95']}ms"
    )
    print(f"duplicate hits: coalesced={summary['coalesced']} cached={summary['cached']}")


def show_metrics(address) -> None:
    print("\n== server metrics " + "=" * 42)
    with AuditServiceClient(*address) as client:
        stats = client.stats()
    totals = stats["totals"]
    print(
        f"requests={totals['requests']}  computed={totals['computed']}  "
        f"duplicate_hit_rate={totals['duplicate_hit_rate']:.1%}"
    )
    for session in stats["sessions"]:
        cache = session["cache"]
        line = (
            f"session {session['fingerprint']}: cache "
            f"{cache['hits']}h/{cache['misses']}m (hit rate {cache['hit_rate']:.1%})"
        )
        if "kernels" in session:
            kernel = session["kernels"].get("exact", {})
            line += (
                f"; kernel distributions={kernel.get('distributions', 0)} "
                f"(+{kernel.get('distribution_hits', 0)} memo hits)"
            )
        print(line)


def main() -> None:
    schema = schema_document()
    with ServerThread(workers=4) as server:
        print(f"daemon listening on {server.address[0]}:{server.address[1]}")
        single_requests(server.address, schema)
        coalescing_burst(server.address, schema)
        workload_replay(server.address)
        show_metrics(server.address)
    print("\ndaemon stopped cleanly")


if __name__ == "__main__":
    main()
