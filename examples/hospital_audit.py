#!/usr/bin/env python
"""Hospital scenario: what do published views reveal about patient diagnoses?

The hospital of Section 3.2 stores ``Patient(name, disease)``.  It wants
to publish (i) the list of patient names for a visitor directory and
(ii) the list of diseases treated for a public-health report, while
keeping the *association* between names and diseases secret.

The example shows:

* the exact security verdict (Theorem 4.5) for each view and for their
  collusion,
* how much the association leaks quantitatively (Section 6.1), and how
  the leakage shrinks as the hospital grows,
* how prior knowledge ("Jane is not a patient") changes the analysis
  (Corollary 5.4).

Run with::

    python examples/hospital_audit.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import Dictionary, Fact, SecurityAuditor, q
from repro.bench import patient_schema
from repro.core import TupleStatusKnowledge, positive_leakage, verify_with_knowledge


def main() -> None:
    schema = patient_schema(names=3, diseases=2)
    dictionary = Dictionary.with_expected_size(schema, 2)
    auditor = SecurityAuditor(schema, dictionary=dictionary)

    secret = q("Diag(n, d) :- Patient(n, d)")
    names_view = q("Names(n) :- Patient(n, d)")
    diseases_view = q("Diseases(d) :- Patient(n, d)")

    print("== Individual views and their collusion ==")
    report = auditor.audit(secret, {"directory": names_view, "health_report": diseases_view})
    print(report.render())

    print("\n== How large is the disclosure? ==")
    for expected_size in (1, 3, 5):
        sized = Dictionary.with_expected_size(schema, expected_size)
        leak = positive_leakage(secret, [names_view, diseases_view], sized)
        print(
            f"  expected patients = {expected_size}: "
            f"leak = {float(leak.leakage):.4f} "
            f"(prior {float(leak.prior):.3f} -> posterior {float(leak.posterior):.3f})"
        )
    print("  The relative gain shrinks as the database grows — the Example 6.2 effect.")

    print("\n== Prior knowledge can protect the secret (Corollary 5.4) ==")
    jane_tuples = [
        Fact("Patient", (name, disease))
        for name in ["patient0"]
        for disease in ["disease0", "disease1"]
    ]
    knowledge = TupleStatusKnowledge(absent=jane_tuples)
    jane_secret = q("JaneDiag(d) :- Patient('patient0', d)")
    print("  Secret: patient0's diagnoses; knowledge: patient0 is not in the database.")
    print(
        "  Secure given the views and the knowledge?",
        verify_with_knowledge(jane_secret, [names_view, diseases_view], knowledge, dictionary),
    )
    without = auditor.decide(jane_secret, [names_view, diseases_view])
    print("  Without the knowledge the exact verdict is:", "secure" if without.secure else "NOT secure")


if __name__ == "__main__":
    main()
